"""The Spark program IR: what the static analysis of §3 analyses.

The paper's analysis reads Scala source; ours reads this small IR, which
plays exactly the same role — it records which RDD *variables* are
defined and used where, relative to loops and materialisation points
(persist calls and actions).  The same IR is then *executed* by
:func:`execute_program`, which instruments every materialisation point
with the inferred tag (the Python analogue of the injected ``rdd_alloc``
calls).

Workloads build programs with the fluent API::

    p = Program()
    lines = p.let("lines", p.source(dataset))
    links = p.let("links", lines.map(parse).distinct().group_by_key()
                  .persist(StorageLevel.MEMORY_ONLY))
    ranks = p.let("ranks", links.map_values(lambda v: 1.0))
    with p.loop(iters):
        contribs = p.let("contribs", links.join(ranks).values()
                         .flat_map(spread)
                         .persist(StorageLevel.MEMORY_AND_DISK_SER))
        ranks = p.let("ranks", contribs.reduce_by_key(add)
                      .map_values(damp))
    p.action(ranks, "count")
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import AnalysisError, SparkError
from repro.spark.storage import StorageLevel


class Expr:
    """Base expression; carries the fluent transformation builders."""

    persist_level: Optional[StorageLevel] = None

    # -- fluent builders (mirror of the RDD API) -----------------------------

    def _t(self, op: str, inputs: List["Expr"], **kwargs) -> "TransformExpr":
        return TransformExpr(op, [self] + inputs, kwargs)

    def map(
        self,
        fn: Callable,
        size_factor: float = 1.0,
        preserves_partitioning: bool = False,
    ) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.map`."""
        return self._t(
            "map",
            [],
            fn=fn,
            size_factor=size_factor,
            preserves_partitioning=preserves_partitioning,
        )

    def flat_map(self, fn: Callable, size_factor: float = 1.0) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.flat_map`."""
        return self._t("flat_map", [], fn=fn, size_factor=size_factor)

    def filter(self, predicate: Callable) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.filter`."""
        return self._t("filter", [], predicate=predicate)

    def map_values(self, fn: Callable, size_factor: float = 1.0) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.map_values`."""
        return self._t("map_values", [], fn=fn, size_factor=size_factor)

    def values(self) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.values`."""
        return self._t("values", [])

    def distinct(self, num_partitions: Optional[int] = None) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.distinct`."""
        return self._t("distinct", [], num_partitions=num_partitions)

    def group_by_key(
        self, num_partitions: Optional[int] = None, size_factor: float = 1.0
    ) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.group_by_key`."""
        return self._t(
            "group_by_key", [], num_partitions=num_partitions, size_factor=size_factor
        )

    def reduce_by_key(
        self,
        fn: Callable,
        num_partitions: Optional[int] = None,
        size_factor: float = 1.0,
    ) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.reduce_by_key`."""
        return self._t(
            "reduce_by_key",
            [],
            fn=fn,
            num_partitions=num_partitions,
            size_factor=size_factor,
        )

    def join(self, other: "Expr") -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.join`."""
        return self._t("join", [other])

    def union(self, other: "Expr") -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.union`."""
        return self._t("union", [other])

    def keys(self) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.keys`."""
        return self._t("keys", [])

    def sample(self, fraction: float, seed: int = 17) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.sample`."""
        return self._t("sample", [], fraction=fraction, seed=seed)

    def sort_by_key(
        self, ascending: bool = True, num_partitions: Optional[int] = None
    ) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.sort_by_key`."""
        return self._t(
            "sort_by_key", [], ascending=ascending, num_partitions=num_partitions
        )

    def aggregate_by_key(
        self,
        zero: Any,
        seq_fn: Callable,
        comb_fn: Callable,
        num_partitions: Optional[int] = None,
        size_factor: float = 1.0,
    ) -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.aggregate_by_key`."""
        return self._t(
            "aggregate_by_key",
            [],
            zero=zero,
            seq_fn=seq_fn,
            comb_fn=comb_fn,
            num_partitions=num_partitions,
            size_factor=size_factor,
        )

    def cogroup(self, other: "Expr") -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.cogroup`."""
        return self._t("cogroup", [other])

    def subtract_by_key(self, other: "Expr") -> "TransformExpr":
        """IR mirror of :meth:`repro.spark.rdd.RDD.subtract_by_key`."""
        return self._t("subtract_by_key", [other])

    def persist(self, level: StorageLevel = StorageLevel.MEMORY_ONLY) -> "Expr":
        """Mark this expression's RDD for persistence (a materialisation
        point for the analysis)."""
        self.persist_level = level
        return self

    def persist_serialized(self) -> "Expr":
        """Persist into the serialized off-heap tier, explicitly.

        Unlike ``persist(StorageLevel.MEMORY_ONLY_SER)`` — which
        degrades to the legacy object-heap serialised buffer when the
        ``SERIALIZED_TIER`` flag is off — this surface raises
        :class:`~repro.errors.ConfigError` when the tier is disabled.
        """
        from repro.spark.storage import require_serialized_tier

        require_serialized_tier()
        return self.persist(StorageLevel.MEMORY_ONLY_SER)

    # -- traversal helpers -----------------------------------------------------

    def children(self) -> List["Expr"]:
        """Immediate sub-expressions."""
        return []

    def walk(self) -> List["Expr"]:
        """This expression and all sub-expressions, pre-order."""
        out: List[Expr] = [self]
        for child in self.children():
            out.extend(child.walk())
        return out


@dataclass
class VarRef(Expr):
    """A use of a program variable."""

    name: str

    def children(self) -> List[Expr]:
        return []


class SourceExpr(Expr):
    """An input dataset (textFile / parallelize)."""

    def __init__(self, dataset) -> None:
        self.dataset = dataset

    def children(self) -> List[Expr]:
        return []


class TransformExpr(Expr):
    """A transformation applied to input expressions."""

    def __init__(self, op: str, inputs: List[Expr], kwargs: Dict[str, Any]) -> None:
        self.op = op
        self.inputs = inputs
        self.kwargs = kwargs

    def children(self) -> List[Expr]:
        return list(self.inputs)


class Stmt:
    """Base statement."""


@dataclass
class AssignStmt(Stmt):
    """``var = expr``."""

    var: str
    expr: Expr


@dataclass
class LoopStmt(Stmt):
    """``for i in 1..iterations { body }``."""

    iterations: int
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ActionStmt(Stmt):
    """An action (count/collect/reduce) on an expression."""

    expr: Expr
    action: str = "count"
    result_key: Optional[str] = None


@dataclass
class UnpersistStmt(Stmt):
    """``var.unpersist()`` — honoured at runtime, *ignored* by the static
    analysis (the paper's analysis lacks unpersist support; §5.5).

    With ``prior=True`` the statement unpersists the RDD the variable
    held *before* its most recent reassignment (the GraphX pattern:
    release the previous graph version after building the new one).
    ``lag`` unpersists an even older generation.
    """

    var: str
    prior: bool = False
    lag: int = 1


@dataclass
class DriverStmt(Stmt):
    """Driver-side Python code between jobs (e.g. updating K-Means
    centres from a collect result).  Invisible to the static analysis —
    it involves no RDD operations."""

    fn: Callable[[Dict[str, Any]], None]


class Program:
    """A Spark driver program as an analysable statement list."""

    def __init__(self) -> None:
        self.body: List[Stmt] = []
        self._blocks: List[List[Stmt]] = [self.body]

    # -- builders ---------------------------------------------------------------

    def _append(self, stmt: Stmt) -> None:
        self._blocks[-1].append(stmt)

    def source(self, dataset) -> SourceExpr:
        """Reference an input dataset."""
        return SourceExpr(dataset)

    def let(self, name: str, expr: Expr) -> VarRef:
        """Assign ``expr`` to variable ``name`` and return a reference."""
        if not isinstance(expr, Expr):
            raise SparkError(f"let({name!r}) expects an expression")
        self._append(AssignStmt(name, expr))
        return VarRef(name)

    @contextlib.contextmanager
    def loop(self, iterations: int):
        """A computational loop; statements built inside nest in its body."""
        if iterations <= 0:
            raise SparkError("loop iterations must be positive")
        stmt = LoopStmt(iterations)
        self._append(stmt)
        self._blocks.append(stmt.body)
        try:
            yield stmt
        finally:
            self._blocks.pop()

    def action(
        self, expr: Expr, action: str = "count", result_key: Optional[str] = None
    ) -> None:
        """Invoke an action (a materialisation point for the analysis)."""
        self._append(ActionStmt(expr, action, result_key))

    def unpersist(self, var: VarRef) -> None:
        """Unpersist a variable's current RDD at runtime."""
        self._append(UnpersistStmt(var.name))

    def unpersist_prior(self, var: VarRef, lag: int = 1) -> None:
        """Unpersist the RDD ``var`` held ``lag`` reassignments ago (the
        GraphX release-the-old-graph pattern)."""
        self._append(UnpersistStmt(var.name, prior=True, lag=lag))

    def driver(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        """Run driver-side Python between jobs (ignored by the analysis)."""
        self._append(DriverStmt(fn))

    # -- introspection --------------------------------------------------------------

    def statements(self) -> List[Stmt]:
        """Top-level statements."""
        return list(self.body)


def execute_program(
    program: Program,
    ctx,
    tags: Dict[str, Any],
    lifetimes: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run a program against a SparkContext.

    Args:
        program: the IR to execute.
        tags: variable -> :class:`~repro.core.tags.MemoryTag` map from the
            static analysis (empty for non-Panthera runs).
        lifetimes: variable -> :class:`~repro.heap.regions.LifetimeClass`
            map from the Deca lifetime analysis (None for tracing
            policies); annotated onto each materialised RDD the same way
            tags are.

    Returns:
        Action results keyed by ``result_key`` (or ``action<N>``).
    """
    env: Dict[str, Any] = {}
    history: Dict[str, List[Any]] = {}
    results: Dict[str, Any] = {}
    counter = {"n": 0}

    def eval_expr(expr: Expr, var: Optional[str]):
        if isinstance(expr, VarRef):
            if expr.name not in env:
                raise AnalysisError(f"use of undefined variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, SourceExpr):
            return ctx.source_rdd(expr.dataset)
        if isinstance(expr, TransformExpr):
            inputs = [eval_expr(child, var) for child in expr.inputs]
            rdd = _apply_op(expr.op, inputs, expr.kwargs)
            if expr.persist_level is not None:
                rdd.persist(expr.persist_level)
                rdd.memory_tag = tags.get(var) if var is not None else None
                if lifetimes is not None and var is not None:
                    rdd.lifetime = lifetimes.get(var)
            return rdd
        raise AnalysisError(f"unknown expression type {type(expr).__name__}")

    def run_block(stmts: List[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, AssignStmt):
                if stmt.var in env:
                    history.setdefault(stmt.var, []).append(env[stmt.var])
                env[stmt.var] = eval_expr(stmt.expr, stmt.var)
            elif isinstance(stmt, LoopStmt):
                for _ in range(stmt.iterations):
                    run_block(stmt.body)
            elif isinstance(stmt, ActionStmt):
                var = stmt.expr.name if isinstance(stmt.expr, VarRef) else None
                rdd = eval_expr(stmt.expr, var)
                if var is not None and rdd.memory_tag is None:
                    rdd.memory_tag = tags.get(var)
                if (
                    lifetimes is not None
                    and var is not None
                    and rdd.lifetime is None
                ):
                    rdd.lifetime = lifetimes.get(var)
                key = stmt.result_key or f"action{counter['n']}"
                counter["n"] += 1
                results[key] = ctx.scheduler.run_action(rdd, stmt.action)
            elif isinstance(stmt, UnpersistStmt):
                if stmt.prior:
                    prior_versions = history.get(stmt.var, [])
                    if len(prior_versions) >= stmt.lag:
                        prior_versions[-stmt.lag].unpersist()
                else:
                    rdd = env.get(stmt.var)
                    if rdd is not None:
                        rdd.unpersist()
            elif isinstance(stmt, DriverStmt):
                stmt.fn(results)
            else:
                raise AnalysisError(f"unknown statement {type(stmt).__name__}")

    run_block(program.body)
    return results


def _apply_op(op: str, inputs, kwargs):
    """Dispatch an IR op to the RDD API."""
    first = inputs[0]
    if op == "map":
        return first.map(
            kwargs["fn"],
            kwargs.get("size_factor", 1.0),
            preserves_partitioning=kwargs.get("preserves_partitioning", False),
        )
    if op == "flat_map":
        return first.flat_map(kwargs["fn"], kwargs.get("size_factor", 1.0))
    if op == "filter":
        return first.filter(kwargs["predicate"])
    if op == "map_values":
        return first.map_values(kwargs["fn"], kwargs.get("size_factor", 1.0))
    if op == "values":
        return first.values()
    if op == "distinct":
        return first.distinct(kwargs.get("num_partitions"))
    if op == "group_by_key":
        return first.group_by_key(
            kwargs.get("num_partitions"),
            size_factor=kwargs.get("size_factor", 1.0),
        )
    if op == "reduce_by_key":
        return first.reduce_by_key(
            kwargs["fn"],
            kwargs.get("num_partitions"),
            size_factor=kwargs.get("size_factor", 1.0),
        )
    if op == "join":
        return first.join(inputs[1])
    if op == "union":
        return first.union(inputs[1])
    if op == "keys":
        return first.keys()
    if op == "sample":
        return first.sample(kwargs["fraction"], kwargs.get("seed", 17))
    if op == "sort_by_key":
        return first.sort_by_key(
            kwargs.get("ascending", True), kwargs.get("num_partitions")
        )
    if op == "aggregate_by_key":
        return first.aggregate_by_key(
            kwargs["zero"],
            kwargs["seq_fn"],
            kwargs["comb_fn"],
            kwargs.get("num_partitions"),
            size_factor=kwargs.get("size_factor", 1.0),
        )
    if op == "cogroup":
        return first.cogroup(inputs[1])
    if op == "subtract_by_key":
        return first.subtract_by_key(inputs[1])
    raise AnalysisError(f"unknown IR op {op!r}")
