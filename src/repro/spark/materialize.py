"""RDD materialisation: turning record lists into heap object structures.

A materialised RDD mirrors Figure 1 of the paper: a top object references
one backbone array per partition; each array references the partition's
tuple-slab data objects.  The backbone array is allocated through the
tag-wait path (``rdd_alloc`` + first-large-array recognition, §4.2.1), so
under Panthera it lands directly in the old space named by the RDD's
memory tag, while tops and slabs start young and are moved by the GC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import DeviceKind
from repro.core.tags import MemoryTag
from repro.heap.managed_heap import ManagedHeap
from repro.heap.object_model import HeapObject, ObjKind
from repro.memory.machine import Machine
from repro.spark.costmodel import MutatorCosts
from repro.spark import partition as _partition
from repro.spark.partition import Record
from repro.spark.storage import TaggedStorageLevel


@dataclass
class MaterializedBlock:
    """One materialised RDD resident in the heap (or spilled to disk).

    Attributes:
        rdd_id: owning logical RDD.
        top: the RDD top object (the GC root handle).
        arrays: backbone array per partition.
        slabs: tuple-slab objects per partition.
        records: the data plane, per partition.
        data_bytes: total in-heap payload bytes (already shrunk for
            serialised levels).
        level: the tagged storage level, or None for transients.
        on_disk: True once the block was spilled (heap objects released).
        serialized: whether the in-heap form is a serialised buffer
            (reads pay deserialisation CPU).
        last_used: LRU clock for eviction.
        ser_batches: packed column batches per partition when the block
            lives in the serialized off-heap tier (the authoritative
            data plane for such blocks; ``records`` is empty), else
            None.
    """

    rdd_id: int
    top: HeapObject
    arrays: List[HeapObject]
    slabs: List[List[HeapObject]]
    records: List[List[Record]]
    data_bytes: float
    level: Optional[TaggedStorageLevel] = None
    on_disk: bool = False
    serialized: bool = False
    last_used: float = 0.0
    ser_batches: Optional[list] = None

    @property
    def in_serialized_tier(self) -> bool:
        """Whether this block's payload is packed native column batches
        (no object-heap structure, no GC tracing)."""
        return self.ser_batches is not None

    @property
    def region_resident(self) -> bool:
        """Whether this block's objects live in Deca region arenas.

        Region-resident blocks are freed by wholesale arena resets, never
        by GC or block-manager eviction, so capacity planners must not
        count them against the traced old generation."""
        objs = self.arrays if self.arrays else [self.top]
        return any(
            o.space is not None and o.space.generation == "region"
            for o in objs
        )

    def partition_records(self, pidx: int) -> List[Record]:
        """The record list of one partition, unpacking serialized-tier
        batches on demand (every access re-deserialises — that is the
        tier's trade)."""
        if self.ser_batches is not None:
            return self.ser_batches[pidx].unpack()
        return self.records[pidx]

    def partition_count(self, pidx: int) -> int:
        """Number of records in one partition, without unpacking."""
        if self.ser_batches is not None:
            return self.ser_batches[pidx].count
        return len(self.records[pidx])

    def heap_objects(self) -> List[HeapObject]:
        """Every heap object belonging to this block."""
        objs = [self.top] + list(self.arrays)
        for partition_slabs in self.slabs:
            objs.extend(partition_slabs)
        return objs

    def partition_bytes(self, pidx: int) -> float:
        """Tuple payload bytes of one partition."""
        return float(sum(s.size for s in self.slabs[pidx]))

    def partition_traffic(self, pidx: int) -> List[Tuple[DeviceKind, int]]:
        """Per-device byte pieces a streamed read of one partition touches
        (array plus slabs, wherever the GC has put them by now)."""
        pieces: List[Tuple[DeviceKind, int]] = []
        for obj in [self.arrays[pidx]] + self.slabs[pidx]:
            if obj.space is not None and obj.addr is not None:
                pieces.extend(obj.space.object_traffic(obj))
        return pieces

    def device_histogram(self) -> Dict[DeviceKind, int]:
        """Bytes per device over the whole block (for tests/reports)."""
        hist: Dict[DeviceKind, int] = {}
        for obj in self.heap_objects():
            if obj.space is None or obj.addr is None:
                continue
            for device, nbytes in obj.space.object_traffic(obj):
                hist[device] = hist.get(device, 0) + nbytes
        return hist


class Materializer:
    """Builds :class:`MaterializedBlock` structures in the heap."""

    def __init__(
        self,
        heap: ManagedHeap,
        machine: Machine,
        costs: MutatorCosts,
        runtime=None,
    ) -> None:
        """Create a materialiser.

        Args:
            heap: the managed heap.
            machine: cost sink.
            costs: mutator cost constants.
            runtime: the :class:`~repro.core.runtime_api.PantheraRuntime`
                whose ``rdd_alloc`` passes tags down, or None when running
                a non-Panthera policy (no instrumentation).
        """
        self.heap = heap
        self.machine = machine
        self.costs = costs
        self.runtime = runtime

    def materialize(
        self,
        rdd,
        records_by_partition: List[List[Record]],
        tag: Optional[MemoryTag],
        serialized: bool = False,
    ) -> MaterializedBlock:
        """Materialise an RDD's records into heap objects.

        The top object is created (and rooted) first so mid-materialisation
        GCs keep the growing structure alive; ``rdd_alloc`` then arms the
        tag-wait state so the backbone arrays are recognised and
        pretenured; slabs are allocated young and wired to their array
        through the write barrier (dirtying the array's cards exactly as
        fresh old-to-young references do in the real system).

        With ``serialized`` (the _SER storage levels) the in-heap form is
        the compact byte buffer: ``ser_factor`` of the deserialised size,
        paid back as deserialisation CPU on every read.
        """
        heap = self.heap
        costs = self.costs
        threads = heap.config.mutator_threads
        shrink = costs.ser_factor if serialized else 1.0
        top = heap.new_object(ObjKind.RDD_TOP, costs.top_object_bytes, rdd.id)
        heap.add_root(top)
        arrays: List[HeapObject] = []
        slabs: List[List[HeapObject]] = []
        total_bytes = 0.0
        for records in records_by_partition:
            part_bytes = len(records) * rdd.bytes_per_record * shrink
            total_bytes += part_bytes
            if self.runtime is not None:
                self.runtime.rdd_alloc(top, tag)
            array_size = costs.array_bytes_for(part_bytes)
            array = heap.allocate_rdd_array(array_size, rdd.id)
            device = array.space.device_of(array.addr)
            self.machine.access(
                device,
                write_bytes=array_size,
                threads=threads,
                cpu_ns=array_size * costs.cpu_ns_per_byte / threads,
            )
            heap.write_ref(top, array)
            partition_slabs: List[HeapObject] = []
            slab_bytes = max(0.0, part_bytes - array_size)
            # Slabs must fit the young generation: split further when a
            # partition's payload dwarfs eden.
            max_slab = max(1, heap.eden.size // 2)
            n_slabs = max(
                1,
                costs.slabs_per_partition,
                -(-int(slab_bytes) // max_slab),  # ceil division
            )
            slab_size = int(slab_bytes // n_slabs)
            for i in range(n_slabs):
                size = slab_size if i < n_slabs - 1 else int(
                    slab_bytes - slab_size * (n_slabs - 1)
                )
                slab = heap.new_object(ObjKind.DATA, max(size, 0), rdd.id)
                # Slabs land in eden (DRAM) under the tracing policies;
                # under Deca the region arena may be NVM-backed, so the
                # write is charged to the slab's actual device.
                slab_device = (
                    slab.space.device_of(slab.addr)
                    if slab.space is not None and slab.addr is not None
                    else DeviceKind.DRAM
                )
                self.machine.access(
                    slab_device,
                    write_bytes=slab.size,
                    threads=threads,
                    cpu_ns=slab.size * costs.cpu_ns_per_byte / threads,
                )
                heap.write_ref(array, slab)
                partition_slabs.append(slab)
            arrays.append(array)
            slabs.append(partition_slabs)
        # The block shares the scheduler's partition lists: nothing in
        # the system mutates a record list after it is built (the legacy
        # data plane deep-copies instead).
        if _partition.LEGACY_DATA_PLANE:
            records_by_partition = [list(p) for p in records_by_partition]
        return MaterializedBlock(
            rdd_id=rdd.id,
            top=top,
            arrays=arrays,
            slabs=slabs,
            records=records_by_partition,
            data_bytes=total_bytes,
        )

    def release(self, block: MaterializedBlock) -> None:
        """Unroot a block; its heap objects die at the next collection."""
        self.heap.remove_root(block.top)
