"""Mutator cost model: the constants that turn record processing into
simulated nanoseconds and bytes.

One simulated record stands for a *slab* of real tuples whose combined
payload is ``bytes_per_record``; the constants below describe the real
fine-grained structure (100-byte tuples referenced by 8-byte array
slots — Figure 1's heap shape), so array sizes, hash-probe counts and
CPU time all scale with true data volume rather than simulated record
count.

These constants are the calibration surface of the reproduction: the
paper's *shapes* (who wins, by what factor) come from the device model;
these constants set the mutator/GC balance so the shapes are visible at
a Figure 5-like scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MutatorCosts:
    """Tunable constants of the mutator's cost model.

    Attributes:
        cpu_ns_per_byte: pure-CPU cost per processed byte (before the
            mutator-thread divisor).
        cpu_ns_per_record: per-record function-call overhead.
        real_tuple_bytes: payload of one real tuple; drives the array
            slot count and hash-probe count per simulated record.
        ref_bytes: size of one array reference slot.
        hash_grain_bytes: one latency-bound probe per this many bytes of
            hash-table build input.
        ser_factor: serialised-to-deserialised size ratio (shuffle files
            and spilled blocks).
        array_share: fraction of a partition's payload living in array
            objects.  Figure 1's RDDs are array-heavy — the backbone
            reference array plus nested char/buffer arrays — which is why
            the paper notes "the array is often much larger than the top
            and tuple objects" and pretenures it.
        top_object_bytes: size of an RDD top object.
        slabs_per_partition: data (tuple-slab) objects per partition.
        source_cpu_ns_per_byte: parsing cost of input data.
    """

    cpu_ns_per_byte: float = 8.0
    cpu_ns_per_record: float = 2_000.0
    #: Eden fills ``alloc_factor`` times faster than useful output bytes:
    #: JVM Spark allocates boxed tuples, iterator wrappers and buffer
    #: copies far beyond the live data (the "large amounts of
    #: intermediate data" that make GC frequent, §5.3).
    alloc_factor: float = 5.0
    real_tuple_bytes: int = 100
    ref_bytes: int = 8
    hash_grain_bytes: int = 4_096
    ser_factor: float = 0.4
    array_share: float = 0.5
    top_object_bytes: int = 256
    slabs_per_partition: int = 4
    source_cpu_ns_per_byte: float = 2.0

    def array_bytes_for(self, data_bytes: float) -> int:
        """Backbone/buffer array size for ``data_bytes`` of partition
        payload; at least one card's worth so even empty partitions own
        an array."""
        return max(512, int(data_bytes * self.array_share))

    def hash_probes_for(self, build_bytes: float) -> int:
        """Latency-bound probes to build/query a hash table over
        ``build_bytes`` of input."""
        return int(build_bytes / self.hash_grain_bytes)
