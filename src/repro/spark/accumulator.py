"""Accumulators: driver-visible counters updated from tasks.

Spark's accumulators are the standard side channel for metrics (records
seen, parse errors, bytes skipped).  In the simulation they are plain
driver-side state — tasks run in-process — but the API matches, and
updates charge the tiny write they would cost.
"""

from __future__ import annotations

from typing import Callable, Generic, Optional, TypeVar

from repro.errors import SparkError

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A write-only (from tasks) / read-on-driver counter.

    Attributes:
        name: display name.
        value: current accumulated value (driver side).
    """

    def __init__(
        self,
        zero: T,
        add_fn: Optional[Callable[[T, T], T]] = None,
        name: str = "accumulator",
    ) -> None:
        self._zero = zero
        self._add = add_fn or (lambda a, b: a + b)  # type: ignore[operator]
        self.name = name
        self.value: T = zero
        self._updates = 0

    def add(self, amount: T) -> None:
        """Accumulate ``amount`` (called from task-side code)."""
        self.value = self._add(self.value, amount)
        self._updates += 1

    def __iadd__(self, amount: T) -> "Accumulator[T]":
        self.add(amount)
        return self

    def reset(self) -> None:
        """Reset to the zero value."""
        self.value = self._zero
        self._updates = 0

    @property
    def update_count(self) -> int:
        """How many task-side updates have landed."""
        return self._updates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Accumulator {self.name}={self.value!r}>"


def make_accumulator(
    zero: T, add_fn: Optional[Callable[[T, T], T]] = None, name: str = "accumulator"
) -> Accumulator[T]:
    """Create an accumulator; validates the zero/add pairing eagerly."""
    acc = Accumulator(zero, add_fn, name)
    try:
        acc._add(zero, zero)
    except Exception as exc:  # pragma: no cover - defensive
        raise SparkError(f"accumulator add_fn rejects its zero: {exc}") from exc
    return acc
