"""The block manager: persisted-RDD registry, memory pressure and spilling.

Persisted blocks are GC roots for as long as they stay in memory.  Under
memory pressure the manager evicts least-recently-used blocks: levels
with a disk component are serialised out (and later served from disk);
MEMORY_ONLY blocks are dropped and recomputed through lineage on next
access — both exactly Spark's behaviour, and both essential for the
32 GB-heap point of Figure 2(c).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.config import DeviceKind
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine
from repro.spark.costmodel import MutatorCosts
from repro.spark.materialize import MaterializedBlock
from repro.spark.storage import TaggedStorageLevel


class BlockManager:
    """Registry of persisted blocks with LRU spill/drop under pressure."""

    #: Fraction of old-generation capacity kept free for promoted
    #: intermediates (Spark's "execution memory" share, coarsely).
    HEADROOM_FRACTION = 0.2

    def __init__(
        self,
        heap: ManagedHeap,
        machine: Machine,
        costs: MutatorCosts,
    ) -> None:
        self.heap = heap
        self.machine = machine
        self.costs = costs
        self._blocks: Dict[int, MaterializedBlock] = {}
        self._lru = itertools.count(1)
        #: rdd_id -> records retained on "disk" after a spill
        self.spilled_count = 0
        self.dropped_count = 0
        #: blocks destroyed by injected executor kills (not pressure)
        self.killed_count = 0

    # -- lookup ---------------------------------------------------------------

    def get(self, rdd_id: int) -> Optional[MaterializedBlock]:
        """The block for an RDD, bumping its LRU clock."""
        block = self._blocks.get(rdd_id)
        if block is not None:
            block.last_used = next(self._lru)
        return block

    def contains(self, rdd_id: int) -> bool:
        """Whether a block (in memory or on disk) exists for the RDD."""
        return rdd_id in self._blocks

    def blocks(self) -> List[MaterializedBlock]:
        """All registered blocks."""
        return list(self._blocks.values())

    def in_memory_bytes(self) -> float:
        """Data bytes of heap-resident blocks.

        Serialized-tier and region-resident blocks are excluded: their
        payload lives in the native region / Deca arenas, so it never
        competes with the old generation the capacity machinery guards.
        """
        return sum(
            b.data_bytes
            for b in self._blocks.values()
            if not b.on_disk
            and not b.in_serialized_tier
            and not b.region_resident
        )

    def serialized_tier_bytes(self) -> float:
        """Packed bytes resident in the serialized off-heap tier."""
        return sum(
            b.data_bytes for b in self._blocks.values() if b.in_serialized_tier
        )

    # -- registration -----------------------------------------------------------

    def put(self, block: MaterializedBlock, level: TaggedStorageLevel) -> None:
        """Register a freshly materialised persisted block (already rooted
        by the materialiser)."""
        block.level = level
        block.last_used = next(self._lru)
        self._blocks[block.rdd_id] = block

    def unpersist(self, rdd_id: int) -> None:
        """Release a block: unroot its top and forget it."""
        block = self._blocks.pop(rdd_id, None)
        if block is not None and not block.on_disk:
            self._release_heap_objects(block)
        if block is not None and self.heap.trace is not None:
            self.heap.trace.block_event("unpersist", rdd_id, block.data_bytes)

    def _release_heap_objects(self, block: MaterializedBlock) -> None:
        """Unroot a block and stop card-scanning its (now garbage) arrays.

        Serialized-tier blocks additionally free their native batches
        explicitly — nothing else ever reclaims native memory (legacy
        OFF_HEAP blocks live until the end of the run, §4.1).
        Region-resident blocks free their whole region (Deca's
        wholesale container free)."""
        self.heap.remove_root(block.top)
        for array in block.arrays:
            if self.heap.card_table.is_registered(array):
                self.heap.card_table.unregister(array)
        if block.in_serialized_tier:
            for array in block.arrays:
                self.heap.free_native(array)
        if self.heap.regions is not None:
            self.heap.regions.free_block(block)

    # -- memory pressure ------------------------------------------------------------

    def ensure_capacity(
        self, nbytes: float, collector, extra_live: float = 0.0
    ) -> None:
        """Make room for ``nbytes`` of new data in the old generation.

        Evicts LRU blocks until the estimated post-GC free space covers
        the request plus headroom, then runs a full GC to actually
        reclaim the evicted structures.  The headroom always reserves at
        least a nursery's worth of space so a scavenge can never fail to
        tenure its survivors.

        Args:
            nbytes: incoming data size.
            collector: used to run the reclaiming full GC.
            extra_live: live old-generation bytes the block registry
                cannot see (active transient ShuffledRDD blocks).
        """
        capacity = self.heap.old_capacity_bytes() - self.heap.pinned_old_bytes
        headroom = max(
            capacity * self.HEADROOM_FRACTION,
            float(self.heap.config.nursery_bytes),
        )
        evicted_any = False
        while self._estimated_free(capacity) - extra_live < nbytes + headroom:
            victim = self._pick_victim()
            if victim is None:
                break
            self._evict(victim)
            evicted_any = True
        needs_room = (
            self.heap.old_used_bytes() - self.heap.pinned_old_bytes
            + nbytes + headroom
            > capacity
        )
        if evicted_any or needs_room:
            collector.collect_major()

    def _estimated_free(self, capacity: float) -> float:
        return capacity - self.in_memory_bytes()

    def _pick_victim(self) -> Optional[MaterializedBlock]:
        # Serialized-tier and region-resident blocks occupy native
        # memory / Deca arenas, not the old generation — evicting one
        # frees nothing the caller needs.
        candidates = [
            b
            for b in self._blocks.values()
            if not b.on_disk
            and not b.in_serialized_tier
            and not b.region_resident
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda b: b.last_used)

    def evict_region_victim(self) -> bool:
        """Evict the LRU region-resident block (Deca's region-grained
        pressure path: the victim's whole region frees at once).

        Returns:
            True when a victim was evicted.
        """
        candidates = [
            b
            for b in self._blocks.values()
            if not b.on_disk and b.region_resident
        ]
        if not candidates:
            return False
        self._evict(min(candidates, key=lambda b: b.last_used))
        return True

    def _evict(self, block: MaterializedBlock) -> None:
        """Spill (disk-capable levels) or drop (MEMORY_ONLY) one block."""
        level = block.level.level if block.level is not None else None
        if level is not None and level.use_disk:
            self._spill(block)
        else:
            self._drop(block)

    def _spill(self, block: MaterializedBlock) -> None:
        """Serialise a block to disk and release its heap objects."""
        ser_bytes = block.data_bytes * self.costs.ser_factor
        threads = self.heap.config.mutator_threads
        # Read the block from wherever it lives, write the serialised
        # form to disk.
        for pidx in range(len(block.arrays)):
            for device, piece in block.partition_traffic(pidx):
                self.machine.access(device, read_bytes=piece, threads=threads)
        self.machine.access(
            DeviceKind.DISK,
            write_bytes=ser_bytes,
            threads=threads,
            cpu_ns=block.data_bytes * self.costs.cpu_ns_per_byte / threads,
        )
        self._release_heap_objects(block)
        block.on_disk = True
        self.spilled_count += 1
        if self.heap.trace is not None:
            self.heap.trace.block_event("spill", block.rdd_id, block.data_bytes)

    def kill(self, rdd_id: int) -> Optional[MaterializedBlock]:
        """Destroy an in-memory block as if its executor died (fault
        injection): release its heap objects and forget it, so the next
        access recomputes it through lineage.  Unlike :meth:`_drop`
        this is not a pressure event — ``dropped_count`` stays put and
        ``killed_count`` is bumped instead.

        Returns:
            The destroyed block, or None if the RDD has no in-memory
            block to kill.
        """
        block = self._blocks.get(rdd_id)
        if block is None or block.on_disk:
            return None
        self._release_heap_objects(block)
        del self._blocks[rdd_id]
        self.killed_count += 1
        if self.heap.trace is not None:
            self.heap.trace.block_event("drop", block.rdd_id, block.data_bytes)
        return block

    def _drop(self, block: MaterializedBlock) -> None:
        """Drop a MEMORY_ONLY block entirely; lineage will recompute it."""
        self._release_heap_objects(block)
        del self._blocks[block.rdd_id]
        self.dropped_count += 1
        if self.heap.trace is not None:
            self.heap.trace.block_event("drop", block.rdd_id, block.data_bytes)
