"""SparkContext: wires the whole simulated stack together.

``SparkContext.create(config)`` builds one node: the machine (devices +
clock + energy), the placement policy, the managed heap, the collector,
and — when the policy is Panthera — the access monitor and the Panthera
runtime whose ``rdd_alloc`` instrumentation the scheduler invokes at
materialisation points.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.config import PolicyName, SystemConfig
from repro.core.monitor import AccessMonitor
from repro.core.runtime_api import PantheraRuntime
from repro.errors import SparkError
from repro.gc.collector import Collector
from repro.gc.policies import make_policy
from repro.heap.layout import HEAP_BASE, young_span_bytes
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine
from repro.spark.block_manager import BlockManager
from repro.spark.costmodel import MutatorCosts
from repro.spark.materialize import Materializer
from repro.spark.partition import Record, split_evenly
from repro.spark.rdd import RDD, SourceRDD
from repro.spark.scheduler import Scheduler
from repro.spark.shuffle import ShuffleManager


class SparkContext:
    """One simulated Spark driver + executor node."""

    def __init__(
        self,
        config: SystemConfig,
        machine: Machine,
        heap: ManagedHeap,
        collector: Collector,
        costs: Optional[MutatorCosts] = None,
        monitor: Optional[AccessMonitor] = None,
        runtime: Optional[PantheraRuntime] = None,
    ) -> None:
        self.config = config
        self.machine = machine
        self.heap = heap
        self.collector = collector
        self.policy = collector.policy
        self.costs = costs or MutatorCosts()
        self.monitor = monitor
        self.runtime = runtime
        self.shuffles = ShuffleManager()
        self.block_manager = BlockManager(heap, machine, self.costs)
        #: optional :class:`~repro.faults.injector.FaultInjector`; the
        #: scheduler consults it at stage/action boundaries (None = no
        #: fault injection, one ``is None`` check per boundary).
        self.faults = None
        #: optional cluster binding (see :mod:`repro.cluster.executor`);
        #: the scheduler consults it the same way it consults ``faults``
        #: — stage/action boundaries and shuffle fetches, one ``is
        #: None`` check each.  None = this context is a standalone node,
        #: and every code path is byte-identical to the pre-cluster
        #: simulator.
        self.cluster = None
        self.materializer = Materializer(heap, machine, self.costs, runtime)
        self.scheduler = Scheduler(self)
        self._rdd_ids = itertools.count(1)
        self._rdds: Dict[int, RDD] = {}
        self._sources: Dict[str, SourceRDD] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        config: SystemConfig,
        costs: Optional[MutatorCosts] = None,
        bandwidth_window_ns: float = 1e9,
        policy=None,
    ) -> "SparkContext":
        """Build the full stack for one configuration.

        Args:
            policy: an optional custom
                :class:`~repro.gc.policies.PlacementPolicy` instance;
                defaults to the one named by ``config.policy``.  Passing
                a custom policy is the extension point for placement
                research (see ``examples/custom_policy.py``).
        """
        machine = Machine(config, bandwidth_window_ns=bandwidth_window_ns)
        policy = policy or make_policy(config)
        old_base = HEAP_BASE + young_span_bytes(config)
        old_spaces = policy.build_old_spaces(old_base)
        heap = ManagedHeap(
            config, machine, old_spaces, card_padding=policy.card_padding
        )
        monitor: Optional[AccessMonitor] = None
        runtime: Optional[PantheraRuntime] = None
        if config.policy is PolicyName.PANTHERA:
            monitor = AccessMonitor(machine)
            runtime = PantheraRuntime(heap, monitor)
        elif config.policy is PolicyName.DECA:
            # Deca replaces Panthera's tag machinery with lifetime
            # arenas: no monitor, no runtime — the region manager is
            # the whole placement mechanism.
            from repro.heap.regions import RegionManager

            RegionManager.attach(heap)
        collector = Collector(heap, machine, policy, monitor=monitor)
        return cls(
            config,
            machine,
            heap,
            collector,
            costs=costs,
            monitor=monitor,
            runtime=runtime,
        )

    @property
    def panthera_enabled(self) -> bool:
        """Whether Panthera's instrumentation and tag machinery are live."""
        return self.config.policy is PolicyName.PANTHERA

    # -- RDD registry ----------------------------------------------------------

    def new_rdd_id(self) -> int:
        """Fresh RDD id."""
        return next(self._rdd_ids)

    def register_rdd(self, rdd: RDD) -> None:
        """Track a logical RDD (for reports and tests)."""
        self._rdds[rdd.id] = rdd

    def rdd_by_id(self, rdd_id: int) -> RDD:
        """Look up a registered RDD."""
        try:
            return self._rdds[rdd_id]
        except KeyError:
            raise SparkError(f"unknown RDD id {rdd_id}") from None

    # -- sources -----------------------------------------------------------------

    def source_rdd(self, dataset) -> SourceRDD:
        """SourceRDD for a dataset spec (cached, like an HDFS file)."""
        cached = self._sources.get(dataset.name)
        if cached is not None:
            return cached
        source = self.parallelize(
            dataset.records,
            dataset.num_partitions,
            dataset.total_bytes,
            name=dataset.name,
        )
        self._sources[dataset.name] = source
        return source

    def text_file(
        self,
        path: str,
        total_bytes: Optional[float] = None,
        num_partitions: int = 4,
    ) -> SourceRDD:
        """Load a text file as ``(line_number, line)`` records — the
        ``ctx.textFile(...)`` entry point of Figure 2(a).

        Args:
            path: the file to read.
            total_bytes: in-memory byte weight; defaults to 8x the file
                size (the Java object-bloat factor; see DESIGN.md).
            num_partitions: input split count.
        """
        import os

        records: List[Record] = []
        with open(path) as fh:
            for idx, line in enumerate(fh):
                records.append((idx, line.rstrip("\n")))
        if not records:
            raise SparkError(f"empty input file: {path}")
        weight = total_bytes if total_bytes is not None else os.path.getsize(path) * 8
        return self.parallelize(
            records, num_partitions, weight, name=os.path.basename(path)
        )

    def parallelize(
        self,
        records: List[Record],
        num_partitions: int,
        total_bytes: float,
        name: str = "parallelize",
    ) -> SourceRDD:
        """Create a source RDD from records with a total byte weight."""
        if not records:
            raise SparkError("cannot parallelize an empty dataset")
        partitions = split_evenly(records, num_partitions)
        return SourceRDD(
            self,
            partitions,
            bytes_per_record=total_bytes / len(records),
            name=name,
        )

    # -- runtime hooks --------------------------------------------------------------

    def on_rdd_call(self, rdd: RDD) -> None:
        """A transformation/action was invoked on an RDD: under Panthera,
        calls on materialised RDDs are monitored (§4.2.2)."""
        if self.monitor is None:
            return
        if rdd.persist_level is not None or self.block_manager.contains(rdd.id):
            self.monitor.record_call(rdd.id)

    def unpersist(self, rdd: RDD) -> None:
        """Release an RDD's persisted block."""
        self.block_manager.unpersist(rdd.id)
