"""Partitioning: records, hash partitioner and helpers.

A record is a plain ``(key, value)`` tuple; its byte weight lives on the
owning RDD (``bytes_per_record``), which keeps the data plane cheap while
the cost plane stays byte-accurate.

This module is also the home of the data plane's A/B switch: every
wall-clock optimisation introduced by the scale-sweep overhaul (cached
key hashing, one-pass bucketing, shared record batches, copy elision in
the scheduler and materialiser) is guarded by :data:`LEGACY_DATA_PLANE`,
mirroring ``repro.gc.charging.BATCHED_DEPOSITS``.  Flipping the flag
restores the original per-record code paths, which is how the identity
tests prove the optimised plane is byte-for-byte equivalent.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple

Record = Tuple[Any, Any]

#: A/B switch for the optimised data plane.  The default (False) enables
#: cached hashing, one-pass bucketing and shared (copy-elided) record
#: batches; True restores the original per-record implementations.
#: Results are byte-identical either way — only wall-clock time differs —
#: because (a) the hash cache stores only exact-``str`` keys, whose
#: equality implies identical characters and therefore an identical
#: polynomial hash, (b) the inline ``int`` path computes exactly what
#: ``_stable_hash`` computes for ints, and (c) no consumer of a record
#: list ever mutates it in place (transformations build fresh output
#: lists), so sharing a list is observationally equal to copying it.
LEGACY_DATA_PLANE = False

#: Bound on the per-partitioner key-hash cache.  Larger key universes
#: simply stop caching; correctness never depends on a hit.
_HASH_CACHE_LIMIT = 1 << 16

#: Sentinel distinguishing "absent" from legitimate None/falsy values in
#: single-probe dict loops (see ``rdd.py`` aggregators).
_MISSING = object()


class HashPartitioner:
    """Spark's default partitioner: ``hash(key) mod n``.

    Python's ``hash`` of ints/strings is deterministic within a process
    for ints and stable across runs for ints; to be fully reproducible we
    use a simple polynomial string hash instead of the salted built-in.

    String keys have their hash memoised per partitioner (bounded by
    ``_HASH_CACHE_LIMIT``): only exact-type ``str`` keys are cached, so a
    cache hit can never return a hash computed for a different-typed
    equal key (``1.0 == 1`` but ``_stable_hash(1.0) != _stable_hash(1)``
    — floats, bools and tuples therefore always take the uncached path).
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self._hash_cache: Dict[str, int] = {}

    def partition_of(self, key: Hashable) -> int:
        """Partition index for a key."""
        if LEGACY_DATA_PLANE:
            return _stable_hash(key) % self.num_partitions
        tk = type(key)
        if tk is int:
            return (key & 0x7FFFFFFF) % self.num_partitions
        if tk is str:
            cache = self._hash_cache
            h = cache.get(key)
            if h is None:
                h = _stable_hash(key)
                if len(cache) < _HASH_CACHE_LIMIT:
                    cache[key] = h
            return h % self.num_partitions
        return _stable_hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self) -> int:
        return hash(("HashPartitioner", self.num_partitions))

    def bucket_into(
        self, records: Iterable[Record], buckets: List[List[Record]]
    ) -> List[List[Record]]:
        """Append each record to its partition's bucket, one pass.

        The shuffle map stage's hot loop: locals are bound once and the
        common key types (exact ``int``, cached exact ``str``) bypass the
        ``partition_of`` call entirely.  Bucket assignment is identical
        to ``buckets[self.partition_of(record[0])].append(record)``.
        """
        if LEGACY_DATA_PLANE:
            for record in records:
                buckets[self.partition_of(record[0])].append(record)
            return buckets
        n = self.num_partitions
        cache = self._hash_cache
        cache_get = cache.get
        for record in records:
            key = record[0]
            tk = type(key)
            if tk is int:
                h = key & 0x7FFFFFFF
            elif tk is str:
                h = cache_get(key)
                if h is None:
                    h = _stable_hash(key)
                    if len(cache) < _HASH_CACHE_LIMIT:
                        cache[key] = h
            elif (
                tk is tuple
                and len(key) == 2
                and type(key[0]) is int
                and type(key[1]) is int
            ):
                # distinct()'s (record, None) keying shuffles 2-int
                # tuples; inline the recursion for exactly that shape.
                h = (
                    (key[0] & 0x7FFFFFFF) * 1_000_003 + (key[1] & 0x7FFFFFFF)
                ) & 0x7FFFFFFF
            else:
                h = _stable_hash(key)
            buckets[h % n].append(record)
        return buckets

    def split(self, records: Iterable[Record]) -> List[List[Record]]:
        """Bucket records into per-partition lists."""
        buckets: List[List[Record]] = [[] for _ in range(self.num_partitions)]
        return self.bucket_into(records, buckets)


def _stable_hash(key: Hashable) -> int:
    """A deterministic, process-independent hash for common key types."""
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, str):
        acc = 0
        for ch in key:
            acc = (acc * 31 + ord(ch)) & 0x7FFFFFFF
        return acc
    if isinstance(key, tuple):
        acc = 0
        for item in key:
            acc = (acc * 1_000_003 + _stable_hash(item)) & 0x7FFFFFFF
        return acc
    if isinstance(key, float):
        # Non-finite keys first: int(inf * 1e6) raises OverflowError and
        # int(nan * 1e6) raises ValueError.  Hash them to their IEEE-754
        # single-precision bit patterns (masked to 31 bits) — arbitrary
        # but deterministic, and distinct for nan / +inf / -inf.
        if key != key:  # nan (the only float unequal to itself)
            return 0x7FC00000
        if key == math.inf:
            return 0x7F800000
        if key == -math.inf:
            return 0x7F800001
        scaled = key * 1e6
        if math.isinf(scaled):
            # Finite but beyond float range once scaled: fall back to
            # the unscaled integer part (still deterministic; the 1e6
            # scaling only exists to separate nearby small floats).
            return _stable_hash(int(key))
        return _stable_hash(int(scaled))
    if isinstance(key, (bytes, bytearray)):
        acc = 0
        for b in key:
            acc = (acc * 31 + b) & 0x7FFFFFFF
        return acc
    if key is None:
        return 0
    return hash(key) & 0x7FFFFFFF


def split_evenly(records: Sequence[Record], num_partitions: int) -> List[List[Record]]:
    """Round-robin split for un-keyed sources."""
    buckets: List[List[Record]] = [[] for _ in range(num_partitions)]
    for idx, record in enumerate(records):
        buckets[idx % num_partitions].append(record)
    return buckets
