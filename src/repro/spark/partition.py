"""Partitioning: records, hash partitioner and helpers.

A record is a plain ``(key, value)`` tuple; its byte weight lives on the
owning RDD (``bytes_per_record``), which keeps the data plane cheap while
the cost plane stays byte-accurate.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

Record = Tuple[Any, Any]


class HashPartitioner:
    """Spark's default partitioner: ``hash(key) mod n``.

    Python's ``hash`` of ints/strings is deterministic within a process
    for ints and stable across runs for ints; to be fully reproducible we
    use a simple polynomial string hash instead of the salted built-in.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition_of(self, key: Hashable) -> int:
        """Partition index for a key."""
        return _stable_hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self) -> int:
        return hash(("HashPartitioner", self.num_partitions))

    def split(self, records: Iterable[Record]) -> List[List[Record]]:
        """Bucket records into per-partition lists."""
        buckets: List[List[Record]] = [[] for _ in range(self.num_partitions)]
        for record in records:
            buckets[self.partition_of(record[0])].append(record)
        return buckets


def _stable_hash(key: Hashable) -> int:
    """A deterministic, process-independent hash for common key types."""
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, str):
        acc = 0
        for ch in key:
            acc = (acc * 31 + ord(ch)) & 0x7FFFFFFF
        return acc
    if isinstance(key, tuple):
        acc = 0
        for item in key:
            acc = (acc * 1_000_003 + _stable_hash(item)) & 0x7FFFFFFF
        return acc
    if isinstance(key, float):
        return _stable_hash(int(key * 1e6))
    if isinstance(key, (bytes, bytearray)):
        acc = 0
        for b in key:
            acc = (acc * 31 + b) & 0x7FFFFFFF
        return acc
    if key is None:
        return 0
    return hash(key) & 0x7FFFFFFF


def split_evenly(records: Sequence[Record], num_partitions: int) -> List[List[Record]]:
    """Round-robin split for un-keyed sources."""
    buckets: List[List[Record]] = [[] for _ in range(num_partitions)]
    for idx, record in enumerate(records):
        buckets[idx % num_partitions].append(record)
    return buckets
