"""The logical RDD graph: lazy transformations and their dependencies.

RDDs here are *descriptions* — nothing computes until an action runs.
Narrow transformations pipeline inside a stage; wide (shuffle)
dependencies cut stages exactly like Spark's scheduler (§2).  Every RDD
carries an average ``bytes_per_record`` so the cost plane knows how many
bytes each partition represents.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.core.tags import MemoryTag
from repro.errors import SparkError
from repro.spark import columnar as _columnar
from repro.spark import partition as _partition
from repro.spark.partition import _MISSING, HashPartitioner, Record
from repro.spark.storage import StorageLevel


class Dependency:
    """Base class for RDD dependencies."""

    def __init__(self, parent: "RDD") -> None:
        self.parent = parent


class NarrowDependency(Dependency):
    """Each child partition uses at most one parent partition (§2)."""


class ShuffleDependency(Dependency):
    """Each parent partition feeds many child partitions: a stage boundary.

    Attributes:
        partitioner: how shuffle output is bucketed.
        map_side_combine: optional per-key pairwise combiner applied
            before the shuffle write (reduceByKey's optimisation).
        map_side_aggregate: optional per-partition pre-aggregator
            (records -> records) applied before the shuffle write —
            aggregateByKey's seq-fold, which pairwise combining cannot
            express.  Mutually exclusive with ``map_side_combine``.
        combine_factor: output/input byte ratio of the map-side combine.
    """

    _ids = itertools.count(0)

    def __init__(
        self,
        parent: "RDD",
        partitioner: HashPartitioner,
        map_side_combine: Optional[Callable[[Any, Any], Any]] = None,
        map_side_aggregate: Optional[Callable[[List[Record]], List[Record]]] = None,
        combine_factor: float = 1.0,
    ) -> None:
        super().__init__(parent)
        self.partitioner = partitioner
        self.map_side_combine = map_side_combine
        self.map_side_aggregate = map_side_aggregate
        self.combine_factor = combine_factor
        self.shuffle_id = next(ShuffleDependency._ids)


class RDD:
    """A logical, immutable, partitioned collection of key/value records."""

    def __init__(
        self,
        ctx,
        deps: List[Dependency],
        num_partitions: int,
        bytes_per_record: float,
        name: str,
        partitioner: Optional[HashPartitioner] = None,
    ) -> None:
        if num_partitions <= 0:
            raise SparkError("an RDD needs at least one partition")
        self.ctx = ctx
        self.id: int = ctx.new_rdd_id()
        self.deps = deps
        self.num_partitions = num_partitions
        self.bytes_per_record = float(bytes_per_record)
        self.name = name
        self.partitioner = partitioner
        self.persist_level: Optional[StorageLevel] = None
        #: tag inferred by the static analysis for this RDD's variable (set
        #: by the driver before execution); propagated tags are handled at
        #: runtime by the scheduler.
        self.memory_tag: Optional[MemoryTag] = None
        #: lifetime class assigned by the Deca analysis (None under the
        #: tracing policies); the scheduler routes classified RDDs into
        #: the matching region arena at materialisation.
        self.lifetime = None
        ctx.register_rdd(self)

    # -- bookkeeping -------------------------------------------------------

    @property
    def parents(self) -> List["RDD"]:
        """Parent RDDs in dependency order."""
        return [d.parent for d in self.deps]

    def persist(self, level: StorageLevel = StorageLevel.MEMORY_ONLY) -> "RDD":
        """Mark this RDD for materialisation at first computation."""
        self.persist_level = level
        self.ctx.on_rdd_call(self)
        return self

    def persist_serialized(self) -> "RDD":
        """Persist into the serialized off-heap tier, explicitly.

        Raises :class:`~repro.errors.ConfigError` when the
        ``SERIALIZED_TIER`` flag is off, instead of silently degrading
        to the object-heap serialised buffer like the enum level does.
        """
        from repro.spark.storage import require_serialized_tier

        require_serialized_tier()
        return self.persist(StorageLevel.MEMORY_ONLY_SER)

    def checkpoint(self) -> "RDD":
        """Mark for checkpointing: at first computation the RDD is
        written to reliable storage and the lineage above it is never
        re-executed (Spark's fault-tolerance cut for long lineages).

        Modelled as DISK_ONLY persistence — the scheduler serves later
        reads from the checkpoint file and skips every upstream stage.
        """
        return self.persist(StorageLevel.DISK_ONLY)

    def unpersist(self) -> "RDD":
        """Release this RDD's materialised block (lineage remains)."""
        self.persist_level = None
        self.ctx.unpersist(self)
        return self

    # -- narrow transformations ------------------------------------------------

    def map(
        self,
        fn: Callable[[Record], Record],
        size_factor: float = 1.0,
        name: str = "map",
        preserves_partitioning: bool = False,
    ) -> "RDD":
        """Apply ``fn`` to each record.

        Set ``preserves_partitioning`` when ``fn`` never changes keys, so
        downstream joins can stay narrow (Spark's ``mapPartitions``
        flag; GraphX relies on it to avoid re-shuffling the graph).
        """
        def apply_map(records: List[Record]) -> List[Record]:
            if _columnar.is_batch(records):
                out = _columnar.apply_map_batch(fn, records)
                if out is not None:
                    return out
                records = records.to_records()
            return list(map(fn, records))

        return self._narrow(
            apply_map, size_factor, name, preserves=preserves_partitioning
        )

    def flat_map(
        self,
        fn: Callable[[Record], List[Record]],
        size_factor: float = 1.0,
        name: str = "flatMap",
    ) -> "RDD":
        """Apply ``fn`` to each record and flatten the results."""
        def apply_flat_map(records: List[Record]) -> List[Record]:
            return list(
                itertools.chain.from_iterable(map(fn, records))
            )

        return self._narrow(apply_flat_map, size_factor, name, preserves=False)

    def filter(
        self, predicate: Callable[[Record], bool], name: str = "filter"
    ) -> "RDD":
        """Keep records satisfying the predicate."""
        def apply_filter(records: List[Record]) -> List[Record]:
            return list(filter(predicate, records))

        return self._narrow(apply_filter, 1.0, name, preserves=True)

    def map_values(
        self,
        fn: Callable[[Any], Any],
        size_factor: float = 1.0,
        name: str = "mapValues",
    ) -> "RDD":
        """Transform values, preserving keys and partitioning."""
        def apply_map_values(records: List[Record]) -> List[Record]:
            if _columnar.is_batch(records):
                kern = _columnar.map_values_kernel_for(fn)
                out = kern(records) if kern is not None else None
                if out is not None:
                    return out
                records = records.to_records()
            return [(k, fn(v)) for k, v in records]

        return self._narrow(apply_map_values, size_factor, name, preserves=True)

    def values(self, name: str = "values") -> "RDD":
        """Project to values (keyed by their original key for bookkeeping
        simplicity: downstream flatMaps receive (key, value) pairs)."""
        def apply_values(records: List[Record]) -> List[Record]:
            if _partition.LEGACY_DATA_PLANE:
                return list(records)
            return records

        return self._narrow(apply_values, 1.0, name, preserves=False)

    def _narrow(
        self,
        fn: Callable[[List[Record]], List[Record]],
        size_factor: float,
        name: str,
        preserves: bool,
    ) -> "RDD":
        self.ctx.on_rdd_call(self)
        return MapPartitionsRDD(
            self.ctx,
            parent=self,
            fn=fn,
            bytes_per_record=self.bytes_per_record * size_factor,
            name=name,
            preserves_partitioning=preserves,
        )

    def union(self, other: "RDD", name: str = "union") -> "RDD":
        """Concatenate two RDDs (narrow)."""
        self.ctx.on_rdd_call(self)
        self.ctx.on_rdd_call(other)
        return UnionRDD(self.ctx, [self, other], name=name)

    def keys(self, name: str = "keys") -> "RDD":
        """Project to ``(key, key)`` pairs (keys only, keyed by itself)."""
        return self.map(lambda r: (r[0], r[0]), name=name)

    def sample(self, fraction: float, seed: int = 17, name: str = "sample") -> "RDD":
        """Deterministic Bernoulli sample of the records."""
        if not 0.0 <= fraction <= 1.0:
            raise SparkError("sample fraction must be in [0, 1]")
        import random as _random

        def apply_sample(records: List[Record]) -> List[Record]:
            rng = _random.Random(seed)
            return [r for r in records if rng.random() < fraction]

        return self._narrow(apply_sample, fraction, name, preserves=True)

    # -- wide transformations -------------------------------------------------

    def _default_partitioner(self, n: Optional[int]) -> HashPartitioner:
        return HashPartitioner(n or self.num_partitions)

    def group_by_key(
        self,
        num_partitions: Optional[int] = None,
        size_factor: float = 1.0,
        name: str = "groupByKey",
    ) -> "RDD":
        """Group values by key (wide).

        ``size_factor`` scales the grouped records' byte weight: grouping
        E edge records into V adjacency records conserves total bytes
        when ``size_factor = E / V``.
        """
        self.ctx.on_rdd_call(self)
        partitioner = self._default_partitioner(num_partitions)

        def group(records: List[Record]) -> List[Record]:
            grouped: dict = {}
            if _partition.LEGACY_DATA_PLANE:
                for k, v in records:
                    grouped.setdefault(k, []).append(v)
            else:
                get = grouped.get
                for k, v in records:
                    values = get(k)
                    if values is None:
                        grouped[k] = [v]
                    else:
                        values.append(v)
            return list(grouped.items())

        return ShuffledRDD(
            self.ctx,
            self,
            partitioner,
            aggregator=group,
            name=name,
            size_factor=size_factor,
        )

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        size_factor: float = 1.0,
        name: str = "reduceByKey",
    ) -> "RDD":
        """Reduce values per key with a map-side combine (wide)."""
        self.ctx.on_rdd_call(self)
        partitioner = self._default_partitioner(num_partitions)

        def reduce_partition(records: List[Record]) -> List[Record]:
            folded = _columnar.apply_reduce_kernel(fn, records)
            if folded is not None:
                return folded
            acc: dict = {}
            if _partition.LEGACY_DATA_PLANE:
                for k, v in records:
                    acc[k] = fn(acc[k], v) if k in acc else v
            else:
                get = acc.get
                for k, v in records:
                    prev = get(k, _MISSING)
                    acc[k] = v if prev is _MISSING else fn(prev, v)
            return list(acc.items())

        return ShuffledRDD(
            self.ctx,
            self,
            partitioner,
            aggregator=reduce_partition,
            name=name,
            map_side_combine=fn,
            combine_factor=0.5,
            size_factor=size_factor,
        )

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        """Remove duplicate records (wide)."""
        keyed = self.map(lambda r: (r, None), name="distinct-key")
        deduped = keyed.reduce_by_key(lambda a, b: a, num_partitions, name="distinct")
        return deduped.map(lambda r: r[0], name="distinct-unkey")

    def aggregate_by_key(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        size_factor: float = 1.0,
        name: str = "aggregateByKey",
    ) -> "RDD":
        """Per-key aggregation with distinct within-partition (``seq_fn``
        folded from ``zero``) and across-partition (``comb_fn``) combine
        functions (wide)."""
        self.ctx.on_rdd_call(self)
        partitioner = self._default_partitioner(num_partitions)

        def seq_fold(records: List[Record]) -> List[Record]:
            acc: dict = {}
            if _partition.LEGACY_DATA_PLANE:
                for k, v in records:
                    acc[k] = seq_fn(acc[k] if k in acc else zero, v)
            else:
                get = acc.get
                for k, v in records:
                    prev = get(k, _MISSING)
                    acc[k] = seq_fn(zero if prev is _MISSING else prev, v)
            return list(acc.items())

        def comb_fold(records: List[Record]) -> List[Record]:
            acc: dict = {}
            if _partition.LEGACY_DATA_PLANE:
                for k, partial in records:
                    acc[k] = comb_fn(acc[k], partial) if k in acc else partial
            else:
                get = acc.get
                for k, partial in records:
                    prev = get(k, _MISSING)
                    acc[k] = (
                        partial if prev is _MISSING else comb_fn(prev, partial)
                    )
            return list(acc.items())

        return ShuffledRDD(
            self.ctx,
            self,
            partitioner,
            aggregator=comb_fold,
            name=name,
            map_side_aggregate=seq_fold,
            combine_factor=0.5,
            size_factor=size_factor,
        )

    def sort_by_key(
        self,
        ascending: bool = True,
        num_partitions: Optional[int] = None,
        name: str = "sortByKey",
    ) -> "RDD":
        """Sort by key within each hash partition (wide).

        A faithful range partitioner would need a sampling pass; hash
        bucketing with per-partition sorting preserves the memory
        behaviour (a full shuffle plus a sort buffer), which is what the
        simulation cares about.
        """
        self.ctx.on_rdd_call(self)
        partitioner = self._default_partitioner(num_partitions)

        def sort_records(records: List[Record]) -> List[Record]:
            return sorted(records, key=lambda r: r[0], reverse=not ascending)

        return ShuffledRDD(
            self.ctx, self, partitioner, aggregator=sort_records, name=name
        )

    def cogroup(self, other: "RDD", name: str = "cogroup") -> "RDD":
        """Group both RDDs by key: ``(key, ([self values], [other
        values]))``, keeping keys present on either side."""
        self.ctx.on_rdd_call(self)
        self.ctx.on_rdd_call(other)
        n = max(self.num_partitions, other.num_partitions)
        partitioner = (
            self.partitioner
            if self.partitioner is not None
            else other.partitioner or HashPartitioner(n)
        )
        return CoGroupedRDD(
            self.ctx, [self, other], partitioner, name=name, inner=False
        )

    def subtract_by_key(self, other: "RDD", name: str = "subtractByKey") -> "RDD":
        """Records of ``self`` whose key does not appear in ``other``."""
        cogrouped = self.cogroup(other, name="subtract-cogroup")

        def keep_left_only(records: List[Record]) -> List[Record]:
            out: List[Record] = []
            for k, (left, right) in records:
                if not right:
                    out.extend((k, v) for v in left)
            return out

        return MapPartitionsRDD(
            self.ctx,
            parent=cogrouped,
            fn=keep_left_only,
            bytes_per_record=self.bytes_per_record,
            name=name,
            preserves_partitioning=True,
        )

    def join(self, other: "RDD", name: str = "join") -> "RDD":
        """Inner join by key; co-partitioned parents join narrowly (§2)."""
        self.ctx.on_rdd_call(self)
        self.ctx.on_rdd_call(other)
        n = max(self.num_partitions, other.num_partitions)
        partitioner = (
            self.partitioner
            if self.partitioner is not None
            else other.partitioner or HashPartitioner(n)
        )
        cogrouped = CoGroupedRDD(self.ctx, [self, other], partitioner, name="cogroup")

        def flatten(records: List[Record]) -> List[Record]:
            out: List[Record] = []
            for k, (left, right) in records:
                for lv in left:
                    for rv in right:
                        out.append((k, (lv, rv)))
            return out

        result = MapPartitionsRDD(
            self.ctx,
            parent=cogrouped,
            fn=flatten,
            bytes_per_record=self.bytes_per_record + other.bytes_per_record,
            name=name,
            preserves_partitioning=True,
        )
        return result

    # -- actions --------------------------------------------------------------

    def count(self) -> int:
        """Number of records (runs the pipeline)."""
        self.ctx.on_rdd_call(self)
        return self.ctx.scheduler.run_action(self, "count")

    def collect(self) -> List[Record]:
        """All records (runs the pipeline)."""
        self.ctx.on_rdd_call(self)
        return self.ctx.scheduler.run_action(self, "collect")

    def take(self, n: int) -> List[Record]:
        """The first ``n`` records.

        Spark stops after enough partitions have produced ``n`` records;
        we model that by computing partitions in order until satisfied.
        """
        if n < 0:
            raise SparkError("take(n) needs n >= 0")
        self.ctx.on_rdd_call(self)
        return self.ctx.scheduler.run_take(self, n)

    def first(self) -> Record:
        """The first record."""
        taken = self.take(1)
        if not taken:
            raise SparkError("first() on an empty RDD")
        return taken[0]

    def reduce(self, fn: Callable[[Record, Record], Record]):
        """Fold all records with ``fn`` (runs the pipeline)."""
        self.ctx.on_rdd_call(self)
        records = self.ctx.scheduler.run_action(self, "collect")
        if not records:
            raise SparkError("reduce of an empty RDD")
        acc = records[0]
        for r in records[1:]:
            acc = fn(acc, r)
        return acc

    # -- computation (invoked by the scheduler) ----------------------------------

    def compute_partition(self, pidx: int, task) -> List[Record]:
        """Produce one partition's records; overridden per subclass."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}[{self.id}] {self.name}>"


class SourceRDD(RDD):
    """Input data partitioned from a generator (textFile / parallelize)."""

    def __init__(
        self,
        ctx,
        partitions: List[List[Record]],
        bytes_per_record: float,
        name: str = "source",
    ) -> None:
        super().__init__(
            ctx,
            deps=[],
            num_partitions=len(partitions),
            bytes_per_record=bytes_per_record,
            name=name,
        )
        self._partitions = partitions
        #: pidx -> packed ColumnBatch (None = proven unpackable), built
        #: lazily so iterative jobs pack each source partition once.
        self._column_parts: dict = {}

    def compute_partition(self, pidx: int, task) -> List[Record]:
        records = self._partitions[pidx]
        task.charge_source_read(self, records)
        # Source partitions are shared, not copied: downstream
        # transformations build fresh output lists and never mutate
        # their input (the legacy data plane copies anyway).
        if _partition.LEGACY_DATA_PLANE:
            return list(records)
        if _columnar.columnar_active():
            batch = self._column_parts.get(pidx, _MISSING)
            if batch is _MISSING:
                batch = _columnar.ColumnBatch.from_records(records)
                self._column_parts[pidx] = batch
            if batch is not None:
                return batch
        return records


class MapPartitionsRDD(RDD):
    """A pipelined narrow transformation."""

    def __init__(
        self,
        ctx,
        parent: RDD,
        fn: Callable[[List[Record]], List[Record]],
        bytes_per_record: float,
        name: str,
        preserves_partitioning: bool,
    ) -> None:
        super().__init__(
            ctx,
            deps=[NarrowDependency(parent)],
            num_partitions=parent.num_partitions,
            bytes_per_record=bytes_per_record,
            name=name,
            partitioner=parent.partitioner if preserves_partitioning else None,
        )
        self.fn = fn

    def compute_partition(self, pidx: int, task) -> List[Record]:
        parent = self.deps[0].parent
        records = task.get_records(parent, pidx)
        out = self.fn(records)
        task.charge_narrow_op(self, parent, records, out)
        return out


class UnionRDD(RDD):
    """Concatenation: child partition i is one parent's partition."""

    def __init__(self, ctx, parents: List[RDD], name: str = "union") -> None:
        bpr = max(p.bytes_per_record for p in parents)
        super().__init__(
            ctx,
            deps=[NarrowDependency(p) for p in parents],
            num_partitions=sum(p.num_partitions for p in parents),
            bytes_per_record=bpr,
            name=name,
        )

    def _locate(self, pidx: int) -> Tuple[RDD, int]:
        for dep in self.deps:
            if pidx < dep.parent.num_partitions:
                return dep.parent, pidx
            pidx -= dep.parent.num_partitions
        raise SparkError(f"partition {pidx} out of range for union")

    def compute_partition(self, pidx: int, task) -> List[Record]:
        parent, parent_pidx = self._locate(pidx)
        return task.get_records(parent, parent_pidx)


class ShuffledRDD(RDD):
    """Stage input: freshly shuffled data, always materialised (§2)."""

    def __init__(
        self,
        ctx,
        parent: RDD,
        partitioner: HashPartitioner,
        aggregator: Callable[[List[Record]], List[Record]],
        name: str,
        map_side_combine: Optional[Callable[[Any, Any], Any]] = None,
        map_side_aggregate: Optional[Callable[[List[Record]], List[Record]]] = None,
        combine_factor: float = 1.0,
        size_factor: float = 1.0,
    ) -> None:
        dep = ShuffleDependency(
            parent,
            partitioner,
            map_side_combine=map_side_combine,
            map_side_aggregate=map_side_aggregate,
            combine_factor=combine_factor,
        )
        super().__init__(
            ctx,
            deps=[dep],
            num_partitions=partitioner.num_partitions,
            bytes_per_record=parent.bytes_per_record * combine_factor * size_factor,
            name=name,
            partitioner=partitioner,
        )
        self.aggregator = aggregator

    @property
    def shuffle_dep(self) -> ShuffleDependency:
        """The single wide dependency feeding this RDD."""
        return self.deps[0]  # type: ignore[return-value]

    def compute_partition(self, pidx: int, task) -> List[Record]:
        raw = task.fetch_shuffle(self.shuffle_dep, pidx)
        out = self.aggregator(raw)
        task.charge_aggregation(self, raw, out)
        return out


class CoGroupedRDD(RDD):
    """Two-parent grouping: the backbone of join.

    A parent that is already partitioned by the target partitioner
    contributes through a narrow dependency (no shuffle — this is why
    persisted, pre-partitioned ``links`` never reshuffles in PageRank);
    other parents shuffle.
    """

    def __init__(
        self,
        ctx,
        parents: List[RDD],
        partitioner: HashPartitioner,
        name: str = "cogroup",
        inner: bool = True,
    ) -> None:
        deps: List[Dependency] = []
        for parent in parents:
            if parent.partitioner == partitioner:
                deps.append(NarrowDependency(parent))
            else:
                deps.append(ShuffleDependency(parent, partitioner))
        super().__init__(
            ctx,
            deps=deps,
            num_partitions=partitioner.num_partitions,
            bytes_per_record=sum(p.bytes_per_record for p in parents),
            name=name,
            partitioner=partitioner,
        )
        #: inner=True keeps only keys present on every side (join);
        #: inner=False keeps all keys (Spark's cogroup semantics).
        self.inner = inner

    def compute_partition(self, pidx: int, task) -> List[Record]:
        sides: List[List[Record]] = []
        for dep in self.deps:
            if isinstance(dep, ShuffleDependency):
                sides.append(task.fetch_shuffle(dep, pidx))
            else:
                sides.append(task.get_records(dep.parent, pidx))
        grouped: dict = {}
        if _partition.LEGACY_DATA_PLANE:
            for side_idx, side in enumerate(sides):
                for k, v in side:
                    slots = grouped.setdefault(k, tuple([] for _ in sides))
                    slots[side_idx].append(v)
        elif len(sides) == 2:
            # The join/cogroup hot path: single dict probe per record and
            # no per-record slot-tuple allocation.  Insertion order (side
            # 0 fully, then side 1) and per-slot append order match the
            # general loop exactly.
            left, right = sides
            get = grouped.get
            for k, v in left:
                slot = get(k)
                if slot is None:
                    grouped[k] = ([v], [])
                else:
                    slot[0].append(v)
            for k, v in right:
                slot = get(k)
                if slot is None:
                    grouped[k] = ([], [v])
                else:
                    slot[1].append(v)
        else:
            n_sides = len(sides)
            get = grouped.get
            for side_idx, side in enumerate(sides):
                for k, v in side:
                    slots = get(k)
                    if slots is None:
                        slots = grouped[k] = tuple([] for _ in range(n_sides))
                    slots[side_idx].append(v)
        if self.inner:
            out = [(k, v) for k, v in grouped.items() if all(v)]
        else:
            out = list(grouped.items())
        task.charge_cogroup(self, sides, out)
        return out
