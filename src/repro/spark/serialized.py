"""The serialized off-heap tier's data plane: packed column batches.

A persisted RDD landing in the serialized tier (see
:mod:`repro.spark.storage`) stores each partition as one
:class:`SerializedColumnBatch` — a packed, GC-invisible buffer in the
native region.  Numeric ``(key, value)`` partitions pack into two
columnar arrays (numpy-backed when numpy is importable, ``array``
module otherwise — the same ladder the vectorised cost plane uses);
everything else byte-packs through ``pickle``.  Both forms round-trip
bit-exactly: ``unpack()`` rebuilds the exact record tuples that went
in, which the hypothesis property suite pins for every workload's
record shapes.

The batches are the *data plane* only.  The simulated costs — the
serialize-on-persist and deserialize-on-access rows charged through
``Machine.run_rows`` — are derived from the RDD's modelled byte sizes
(``bytes_per_record`` × ``ser_factor``), exactly like every other
storage path, so traces and clocks stay a pure function of
(workload, config, scale) regardless of the packing backend.
"""

from __future__ import annotations

import pickle
from typing import List, Optional, Sequence, Tuple

from repro.spark.partition import Record

try:  # numpy is optional, never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

try:
    from array import array as _pyarray
except ImportError:  # pragma: no cover - array is stdlib, always present
    _pyarray = None

#: Exact-representation bounds for packing Python ints into int64 columns.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _column_code(values: Sequence) -> Optional[str]:
    """The columnar type code for one column, or None if not packable.

    ``"q"`` (int64) when every value is a plain ``int`` in int64 range,
    ``"d"`` (float64) when every value is a plain ``float``.  ``bool``
    is an ``int`` subclass and floats outside float64 cannot occur in
    Python, so these two codes round-trip bit-exactly.  Mixed or
    non-numeric columns fall back to byte packing.
    """
    all_int = True
    all_float = True
    for v in values:
        if type(v) is int:
            all_float = False
            if not (_INT64_MIN <= v <= _INT64_MAX):
                return None
        elif type(v) is float:
            all_int = False
        else:
            return None
    if all_int:
        return "q"
    if all_float:
        return "d"
    return None


def _pack_column(values: Sequence, code: str):
    """Pack one numeric column with the best available backend."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64 if code == "q" else _np.float64)
    return _pyarray(code, values)


class SerializedColumnBatch:
    """One partition of a serialized-tier block, in packed form.

    Attributes:
        count: number of records in the batch.
        columnar: True when the batch packed into numeric key/value
            columns (the numpy-or-``array`` fast path) rather than the
            pickled byte fallback.
    """

    __slots__ = ("count", "columnar", "_keys", "_values", "_payload")

    def __init__(self, records: Sequence[Record]) -> None:
        records = list(records)
        self.count = len(records)
        self._keys = None
        self._values = None
        self._payload: Optional[bytes] = None
        key_code = value_code = None
        if records and all(
            type(r) is tuple and len(r) == 2 for r in records
        ):
            key_code = _column_code([k for k, _ in records])
            value_code = _column_code([v for _, v in records]) if key_code else None
        self.columnar = key_code is not None and value_code is not None
        if self.columnar:
            self._keys = _pack_column([k for k, _ in records], key_code)
            self._values = _pack_column([v for _, v in records], value_code)
        else:
            self._payload = pickle.dumps(records, protocol=4)

    @classmethod
    def pack(cls, records: Sequence[Record]) -> "SerializedColumnBatch":
        """Pack one partition's records."""
        return cls(records)

    def unpack(self) -> List[Record]:
        """Rebuild the exact record list that was packed.

        Columnar batches zip their columns back into tuples
        (``tolist()`` returns plain Python ints/floats, so int64 and
        float64 columns reproduce the original objects bit-exactly);
        byte-packed batches unpickle.
        """
        if self.columnar:
            return list(zip(self._keys.tolist(), self._values.tolist()))
        return pickle.loads(self._payload)

    def payload_bytes(self) -> int:
        """Actual packed size in this process (reporting only — the
        simulated packed size is ``bytes_per_record × ser_factor``)."""
        if self.columnar:
            if _np is not None:
                return int(self._keys.nbytes + self._values.nbytes)
            return len(self._keys) * self._keys.itemsize + len(
                self._values
            ) * self._values.itemsize
        return len(self._payload or b"")

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        form = "columnar" if self.columnar else "packed"
        return f"SerializedColumnBatch({self.count} records, {form})"


def pack_partitions(
    parts: Sequence[Sequence[Record]],
) -> List[SerializedColumnBatch]:
    """Pack every partition of a block."""
    return [SerializedColumnBatch.pack(p) for p in parts]


def roundtrip_ok(records: Sequence[Record]) -> Tuple[bool, List[Record]]:
    """Pack + unpack one partition; returns (exact?, unpacked)."""
    out = SerializedColumnBatch.pack(records).unpack()
    return out == list(records), out
