"""Lineage inspection: the stage DAG behind an action (Figure 2(b)).

The scheduler executes stages implicitly (shuffle-file memoisation); this
module makes the structure *visible*: which RDDs pipeline together into a
stage, where the shuffle boundaries fall, and which stage inputs are the
materialised ShuffledRDDs the paper's tag propagation targets.  It also
renders Spark-style ``toDebugString`` lineage trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.spark.rdd import RDD, ShuffleDependency, ShuffledRDD


@dataclass
class Stage:
    """One pipelined stage.

    Attributes:
        stage_id: topological id (0 = deepest upstream stage).
        output: the RDD the stage computes (a shuffle-map input producer
            or the action target).
        rdds: every RDD pipelined inside this stage.
        shuffle_inputs: the ShuffledRDD stage inputs (materialised, §2).
        parent_stages: stages this one consumes shuffles from.
    """

    stage_id: int
    output: RDD
    rdds: List[RDD] = field(default_factory=list)
    shuffle_inputs: List[RDD] = field(default_factory=list)
    parent_stages: List[int] = field(default_factory=list)

def _stage_rdds(output: RDD) -> (List[RDD], List[ShuffleDependency]):
    """Walk one stage: pipeline through narrow deps, stop at shuffles and
    persisted cuts are still part of the stage graph (Spark keeps them in
    the same stage; only shuffles cut)."""
    rdds: List[RDD] = []
    boundary: List[ShuffleDependency] = []
    seen: Set[int] = set()
    stack = [output]
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        rdds.append(node)
        if isinstance(node, ShuffledRDD):
            boundary.append(node.shuffle_dep)
            continue  # the ShuffledRDD is the stage input
        for dep in node.deps:
            if isinstance(dep, ShuffleDependency):
                boundary.append(dep)
            else:
                stack.append(dep.parent)
    return rdds, boundary


def build_stages(action_rdd: RDD) -> List[Stage]:
    """Construct the stage DAG an action on ``action_rdd`` would run.

    Returns:
        Stages in execution (topological) order; the last stage is the
        result stage.
    """
    stages: List[Stage] = []
    stage_of_shuffle: Dict[int, int] = {}

    def visit(output: RDD) -> int:
        rdds, boundary = _stage_rdds(output)
        parents: List[int] = []
        for dep in boundary:
            if dep.shuffle_id not in stage_of_shuffle:
                stage_of_shuffle[dep.shuffle_id] = visit(dep.parent)
            parents.append(stage_of_shuffle[dep.shuffle_id])
        stage = Stage(
            stage_id=len(stages),
            output=output,
            rdds=rdds,
            shuffle_inputs=[r for r in rdds if isinstance(r, ShuffledRDD)],
            parent_stages=sorted(set(parents)),
        )
        stages.append(stage)
        return stage.stage_id

    visit(action_rdd)
    return stages


def lineage_string(rdd: RDD, indent: int = 0, _seen: Optional[Set[int]] = None) -> str:
    """A Spark ``toDebugString``-style rendering of the lineage tree.

    Wide dependencies are marked with ``+-(shuffle)``; persisted RDDs
    with ``[persisted]``; already-printed sub-trees with ``(...)``.
    """
    seen = _seen if _seen is not None else set()
    pad = " " * indent
    marker = " [persisted]" if rdd.persist_level is not None else ""
    line = f"{pad}({rdd.num_partitions}) {type(rdd).__name__}[{rdd.id}] {rdd.name}{marker}"
    if rdd.id in seen:
        return line + " (...)"
    seen.add(rdd.id)
    lines = [line]
    for dep in rdd.deps:
        if isinstance(dep, ShuffleDependency):
            lines.append(f"{pad} +-(shuffle {dep.shuffle_id})")
            lines.append(lineage_string(dep.parent, indent + 4, seen))
        else:
            lines.append(lineage_string(dep.parent, indent + 2, seen))
    return "\n".join(lines)


def stage_summary(stages: List[Stage]) -> str:
    """A compact textual stage DAG."""
    lines = []
    for stage in stages:
        inputs = ", ".join(
            f"{type(r).__name__}[{r.id}]" for r in stage.shuffle_inputs
        ) or "(sources/caches)"
        parents = (
            ", ".join(str(p) for p in stage.parent_stages)
            if stage.parent_stages
            else "-"
        )
        lines.append(
            f"Stage {stage.stage_id}: computes {type(stage.output).__name__}"
            f"[{stage.output.id}] {stage.output.name}; inputs: {inputs}; "
            f"parents: {parents}; {len(stage.rdds)} RDDs"
        )
    return "\n".join(lines)
