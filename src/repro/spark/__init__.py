"""A miniature Spark: lazy RDDs, lineage, stages, shuffles and persistence.

Only what the paper's memory study needs is modelled, but it is modelled
for real: transformations compute actual records (so PageRank really
ranks pages), wide dependencies cut stages and produce materialised
ShuffledRDDs, ``persist`` materialises RDDs into the simulated heap
through the block manager, and every byte moved is charged to the
hybrid-memory machine.

Import :mod:`repro.spark.context` directly for the runtime entry point;
this package re-exports only the leaf building blocks.
"""

from repro.spark.program import Program
from repro.spark.storage import StorageLevel

__all__ = ["Program", "StorageLevel"]
