"""Shuffle file management.

Each stage ends at a shuffle that writes partitioned, serialised records
to disk files; the next stage begins by reading them (§2).  Shuffle
outputs are retained for the lifetime of the application — this is
Spark's stage-skipping memoisation, and it is what keeps lineage-based
recomputation of an iterative job linear instead of exponential.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SparkError
from repro.spark.partition import Record


class ShuffleManager:
    """In-memory registry standing in for shuffle files on disk."""

    def __init__(self) -> None:
        #: shuffle id -> per-reduce-partition record lists
        self._outputs: Dict[int, List[List[Record]]] = {}
        #: shuffle id -> serialised bytes per reduce partition
        self._sizes: Dict[int, List[float]] = {}

    def has(self, shuffle_id: int) -> bool:
        """Whether this shuffle's map stage already ran."""
        return shuffle_id in self._outputs

    def write(
        self,
        shuffle_id: int,
        buckets: List[List[Record]],
        serialized_bytes: List[float],
    ) -> None:
        """Store one shuffle's complete map output."""
        if shuffle_id in self._outputs:
            raise SparkError(f"shuffle {shuffle_id} written twice")
        if len(buckets) != len(serialized_bytes):
            raise SparkError("bucket/size length mismatch")
        self._outputs[shuffle_id] = buckets
        self._sizes[shuffle_id] = serialized_bytes

    def read(self, shuffle_id: int, pidx: int) -> List[Record]:
        """Fetch one reduce partition's records."""
        try:
            return list(self._outputs[shuffle_id][pidx])
        except KeyError:
            raise SparkError(f"shuffle {shuffle_id} has not been written") from None

    def serialized_bytes(self, shuffle_id: int, pidx: int) -> float:
        """Serialised on-disk size of one reduce partition."""
        return self._sizes[shuffle_id][pidx]

    def total_bytes(self) -> float:
        """Total serialised bytes across all shuffles (for reports)."""
        return sum(sum(sizes) for sizes in self._sizes.values())
