"""Shuffle file management.

Each stage ends at a shuffle that writes partitioned, serialised records
to disk files; the next stage begins by reading them (§2).  Shuffle
outputs are retained for the lifetime of the application — this is
Spark's stage-skipping memoisation, and it is what keeps lineage-based
recomputation of an iterative job linear instead of exponential.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import SparkError
from repro.spark import partition as _partition
from repro.spark.partition import Record


class ShuffleManager:
    """In-memory registry standing in for shuffle files on disk."""

    def __init__(self) -> None:
        #: running total of serialised bytes across all shuffles, kept in
        #: lock-step with ``_sizes`` by :meth:`write` so reports never
        #: recompute the nested sum.
        self._total_bytes = 0.0
        #: shuffle id -> per-reduce-partition record lists
        self._outputs: Dict[int, List[List[Record]]] = {}
        #: shuffle id -> serialised bytes per reduce partition
        self._sizes: Dict[int, List[float]] = {}
        #: shuffle id -> reduce partitions lost to an injected executor
        #: kill (their records are gone until the map stage re-runs)
        self._lost: Dict[int, Set[int]] = {}
        #: shuffle id -> dense first-write ordinal.  Raw shuffle ids come
        #: from a process-global counter, so they depend on how many
        #: experiments the process ran before; ordinals are a pure
        #: function of the run (the basis of trace byte-identity).
        self._ordinals: Dict[int, int] = {}

    def has(self, shuffle_id: int) -> bool:
        """Whether this shuffle's map stage already ran."""
        return shuffle_id in self._outputs

    def write(
        self,
        shuffle_id: int,
        buckets: List[List[Record]],
        serialized_bytes: List[float],
        overwrite: bool = False,
    ) -> None:
        """Store one shuffle's complete map output.

        Args:
            overwrite: allow replacing an existing output — the
                fault-recovery path, where a forced map-stage re-run
                restores reduce partitions an executor kill destroyed.
                A rewrite clears the shuffle's lost marks.
        """
        if shuffle_id in self._outputs and not overwrite:
            raise SparkError(f"shuffle {shuffle_id} written twice")
        if len(buckets) != len(serialized_bytes):
            raise SparkError("bucket/size length mismatch")
        self._total_bytes += sum(serialized_bytes) - sum(
            self._sizes.get(shuffle_id, ())
        )
        self._outputs[shuffle_id] = buckets
        self._sizes[shuffle_id] = serialized_bytes
        self._lost.pop(shuffle_id, None)
        self._ordinals.setdefault(shuffle_id, len(self._ordinals))

    def ordinal(self, shuffle_id: int) -> int:
        """Dense, run-local index of a written shuffle (0-based, in
        first-write order); safe to embed in traces and reports."""
        return self._ordinals[shuffle_id]

    def invalidate(self, shuffle_id: int, pidx: int) -> None:
        """Lose one reduce partition (an injected executor kill): its
        records are destroyed and reads fail until the map stage
        re-runs via :meth:`write` with ``overwrite=True``."""
        if shuffle_id not in self._outputs:
            raise SparkError(f"shuffle {shuffle_id} has not been written")
        if not 0 <= pidx < len(self._outputs[shuffle_id]):
            raise SparkError(
                f"shuffle {shuffle_id} has no reduce partition {pidx}"
            )
        self._outputs[shuffle_id][pidx] = []
        self._lost.setdefault(shuffle_id, set()).add(pidx)
        # The running byte counter is intentionally untouched: a kill
        # destroys an executor's in-memory copy, but the shuffle *file*
        # (whose size ``_sizes`` records) still exists on disk, exactly
        # as the recomputed nested sum always reported.

    def is_lost(self, shuffle_id: int, pidx: int) -> bool:
        """Whether a reduce partition is currently lost to a kill."""
        return pidx in self._lost.get(shuffle_id, ())

    def lost_partitions(self, shuffle_id: int) -> Set[int]:
        """The currently-lost reduce partitions of one shuffle."""
        return set(self._lost.get(shuffle_id, ()))

    def read(self, shuffle_id: int, pidx: int) -> List[Record]:
        """Fetch one reduce partition's records.

        The returned list is shared with the stored output (no consumer
        mutates record lists, and :meth:`invalidate` replaces rather than
        mutates bucket entries); the legacy data plane copies it.
        """
        if self.is_lost(shuffle_id, pidx):
            raise SparkError(
                f"shuffle {shuffle_id} partition {pidx} was lost and has "
                "not been recomputed"
            )
        try:
            records = self._outputs[shuffle_id][pidx]
        except KeyError:
            raise SparkError(f"shuffle {shuffle_id} has not been written") from None
        return list(records) if _partition.LEGACY_DATA_PLANE else records

    def serialized_bytes(self, shuffle_id: int, pidx: int) -> float:
        """Serialised on-disk size of one reduce partition."""
        return self._sizes[shuffle_id][pidx]

    def total_bytes(self) -> float:
        """Total serialised bytes across all shuffles (for reports).

        O(1): a running counter maintained by :meth:`write` (overwrites
        subtract the replaced sizes first), always equal to
        ``sum(sum(sizes) for sizes in self._sizes.values())``.
        """
        return self._total_bytes
