"""Exception hierarchy for the Panthera reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A system configuration is inconsistent (e.g. DRAM larger than heap)."""


class OutOfMemoryError(ReproError):
    """The simulated heap cannot satisfy an allocation even after a full GC."""


class HeapError(ReproError):
    """An invariant of the simulated heap was violated."""


class GCError(ReproError):
    """An invariant of the garbage collector was violated."""


class SparkError(ReproError):
    """A Spark-level failure (bad transformation, missing block, ...)."""


class AnalysisError(ReproError):
    """The static analysis was given a malformed program IR."""


class FaultError(ReproError):
    """A fault plan is invalid, or recovery exceeded its bounded retries."""
