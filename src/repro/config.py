"""System configuration: device specifications, energy model and heap sizing.

The numbers in this module come straight from the paper:

* Table 2 gives the DRAM/NVM device parameters used by the NUMA-based
  emulator (DRAM: 120 ns read latency, 30 GB/s; NVM: 300 ns one-hop read
  latency, 10 GB/s read and write, throttled with the thermal control
  register).
* Section 5.1 gives the energy model: Micron TN-40-07 DDR4 numbers for
  DRAM, and Lee et al.'s PCM model for NVM (row-buffer write energy
  1.02 pJ/bit, 32-bit partial write-back, array write-back energy
  16.8 pJ/bit of which only 7.6 % of dirty words are written, array read
  energy 2.47 pJ/bit, row-buffer miss ratio 0.5).  The paper's bottom
  line — 31 200 pJ per NVM cache-line write — is used verbatim.

Sizes are *true* bytes: a "64 GB heap" really is ``64 * GiB``.  Workload
datasets are represented by a few thousand record objects whose ``size``
fields carry the real byte weight, so the simulation stays laptop-scale
while latency/bandwidth/energy computations run on paper-scale numbers.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

CACHE_LINE_BYTES = 64

#: Number of parallel GC threads (paper: "16 GC threads in each GC").
DEFAULT_GC_THREADS = 16
#: Number of mutator cores (paper: 8-core E7-4809 v3 per node).
DEFAULT_MUTATOR_THREADS = 8
#: Memory-level parallelism per thread for latency-bound access batches.
DEFAULT_MLP = 4


class DeviceKind(enum.Enum):
    """The two memory technologies of the hybrid system, plus disk."""

    DRAM = "dram"
    NVM = "nvm"
    DISK = "disk"

    # Members are singletons and Enum equality is identity, so the default
    # identity hash is exact — and C-level, unlike Enum's Python-level
    # ``hash(self._name_)``.  Device kinds key the hottest dicts in the
    # simulator (traffic sets, bandwidth bins, charge accumulators); no
    # code iterates a *set* of them, so ordering is unaffected (dicts
    # iterate in insertion order regardless of hash).
    __hash__ = object.__hash__


@dataclass(frozen=True)
class DeviceSpec:
    """Performance and energy parameters of one memory technology.

    Attributes:
        kind: which technology this spec describes.
        read_latency_ns: latency of one random read (cache-line granular).
        write_latency_ns: latency of one random write.
        read_bandwidth_gbps: sustained sequential read bandwidth in GB/s.
        write_bandwidth_gbps: sustained sequential write bandwidth in GB/s.
        read_energy_pj: dynamic energy of one cache-line read, in pJ.
        write_energy_pj: dynamic energy of one cache-line write, in pJ.
        static_mw_per_gb: background + refresh power per GB, in mW.
    """

    kind: DeviceKind
    read_latency_ns: float
    write_latency_ns: float
    read_bandwidth_gbps: float
    write_bandwidth_gbps: float
    read_energy_pj: float
    write_energy_pj: float
    static_mw_per_gb: float

    def bytes_per_ns_read(self) -> float:
        """Sequential read throughput in bytes per nanosecond."""
        return self.read_bandwidth_gbps  # 1 GB/s == 1 byte/ns

    def bytes_per_ns_write(self) -> float:
        """Sequential write throughput in bytes per nanosecond."""
        return self.write_bandwidth_gbps


# --- Energy model constants (paper §5.1) -------------------------------

#: Row-buffer write energy (pJ/bit), from Lee et al. [30].
ROW_BUFFER_WRITE_PJ_PER_BIT = 1.02
#: NVM array write-back energy (pJ/bit).
NVM_ARRAY_WRITE_PJ_PER_BIT = 16.8
#: Fraction of dirty words actually written back to the NVM array.
NVM_PARTIAL_WRITE_FRACTION = 0.076
#: NVM array read energy (pJ/bit).
NVM_ARRAY_READ_PJ_PER_BIT = 2.47
#: Assumed row-buffer miss ratio.
ROW_BUFFER_MISS_RATIO = 0.5

#: The paper's bottom line: total NVM energy per cache-line write.
NVM_WRITE_PJ_PER_CACHE_LINE = 31_200.0

#: Uniform multiplier on all per-cache-line dynamic energies.  The
#: simulation's slab-aggregated traffic counts each payload byte once per
#: logical pass, while real hardware touches lines several times per pass
#: (pointer chasing, cache-miss refills, write-backs of barrier-marked
#: cards).  The factor is calibrated so dynamic energy is ~40 % of a
#: DRAM-only run's total — the balance the paper's normalised results
#: imply — and it preserves the published *ratios* between DRAM/NVM
#: read/write energies exactly.
DYNAMIC_ENERGY_FACTOR = 16.0

#: NVM reads are non-destructive: array read on a row-buffer miss plus the
#: row-buffer access itself.
NVM_READ_PJ_PER_CACHE_LINE = (
    ROW_BUFFER_MISS_RATIO * NVM_ARRAY_READ_PJ_PER_BIT * CACHE_LINE_BYTES * 8
    + ROW_BUFFER_WRITE_PJ_PER_BIT * CACHE_LINE_BYTES * 8 * 0.5
)

#: DRAM dynamic energy per cache-line access (activation + restore + I/O),
#: derived from Micron TN-40-07 DDR4 power numbers (~5 pJ/bit end to end).
DRAM_READ_PJ_PER_CACHE_LINE = 2_600.0
DRAM_WRITE_PJ_PER_CACHE_LINE = 2_600.0

#: DDR4 background + refresh power (from TN-40-07's idle/active-standby
#: currents, calibrated so the static/dynamic balance matches the
#: paper's normalised energy results): 45 mW per GB.
DRAM_STATIC_MW_PER_GB = 45.0
#: NVM static power is "negligible compared to DRAM" [31].
NVM_STATIC_MW_PER_GB = 3.0


DRAM_SPEC = DeviceSpec(
    kind=DeviceKind.DRAM,
    read_latency_ns=120.0,
    write_latency_ns=120.0,
    read_bandwidth_gbps=30.0,
    write_bandwidth_gbps=30.0,
    read_energy_pj=DRAM_READ_PJ_PER_CACHE_LINE * DYNAMIC_ENERGY_FACTOR,
    write_energy_pj=DRAM_WRITE_PJ_PER_CACHE_LINE * DYNAMIC_ENERGY_FACTOR,
    static_mw_per_gb=DRAM_STATIC_MW_PER_GB,
)

NVM_SPEC = DeviceSpec(
    kind=DeviceKind.NVM,
    read_latency_ns=300.0,
    write_latency_ns=300.0,
    read_bandwidth_gbps=10.0,
    write_bandwidth_gbps=10.0,
    read_energy_pj=NVM_READ_PJ_PER_CACHE_LINE * DYNAMIC_ENERGY_FACTOR,
    write_energy_pj=NVM_WRITE_PJ_PER_CACHE_LINE * DYNAMIC_ENERGY_FACTOR,
    static_mw_per_gb=NVM_STATIC_MW_PER_GB,
)

#: Disk used for shuffle files and spilled RDD partitions.  The paper does
#: not model disk energy; we only charge time.
DISK_SPEC = DeviceSpec(
    kind=DeviceKind.DISK,
    read_latency_ns=100_000.0,
    write_latency_ns=100_000.0,
    read_bandwidth_gbps=2.0,
    write_bandwidth_gbps=1.5,
    read_energy_pj=0.0,
    write_energy_pj=0.0,
    static_mw_per_gb=0.0,
)


class PolicyName(enum.Enum):
    """The memory-management policies compared in the evaluation (§5.2)."""

    DRAM_ONLY = "dram-only"
    UNMANAGED = "unmanaged"
    PANTHERA = "panthera"
    KINGSGUARD_NURSERY = "kingsguard-nursery"
    KINGSGUARD_WRITES = "kingsguard-writes"
    #: Deca-style lifetime-based region allocation (arXiv 1602.01959):
    #: RDD data lives in bump-pointer arenas freed wholesale at stage/job
    #: boundaries instead of being traced by the generational collector.
    DECA = "deca"


@dataclass(frozen=True)
class SystemConfig:
    """Full configuration of one simulated node.

    Attributes:
        heap_bytes: size of the managed Java heap.
        dram_bytes: physical DRAM capacity.  For hybrid configurations this
            is ``dram_ratio * total memory``; for DRAM-only it equals the
            total memory.
        nvm_bytes: physical NVM capacity (0 for DRAM-only).
        policy: which placement policy manages the heap.
        nursery_fraction: young generation size as a fraction of the heap
            (paper §5.2: 1/6 performed best).
        survivor_fraction: each survivor semi-space as a fraction of the
            young generation (eden gets the rest).
        tenuring_threshold: minor GCs an untagged object must survive
            before promotion.
        gc_threads: parallel GC worker count.
        mutator_threads: executor cores running Spark tasks.
        mlp: memory-level parallelism for latency-bound access batches.
        card_size: card granularity in bytes (OpenJDK: 512).
        large_array_threshold: byte size above which an allocation in the
            tag-wait state is recognised as the RDD array (§4.2.1; the
            paper uses a one-million-element length threshold).
        interleave_chunk_bytes: chunk granularity of the unmanaged
            baseline's probabilistic DRAM/NVM interleaving (1 GB).
        card_padding: Panthera's card-alignment optimisation (§4.2.3).
        eager_promotion: Panthera's eager promotion of tagged objects
            (§4.2.2).
        dynamic_migration: major-GC reassessment + migration (§4.2.2).
        kw_write_threshold: writes per major-GC cycle above which the
            Kingsguard-Writes baseline considers an object write-hot.
        gc_ns_per_byte: per-byte GC processing cost across the 16 GC
            threads (tracing, copying and card scanning are object work,
            not pure memcpy); 0.05 ns/B caps aggregate GC throughput at
            ~20 GB/s on DRAM, so NVM's 10 GB/s — not CPU — becomes the
            binding constraint for NVM-resident collection work, which is
            exactly the effect §5.3 describes.
        seed: RNG seed for the unmanaged chunk mapping.
    """

    heap_bytes: int
    dram_bytes: int
    nvm_bytes: int
    policy: PolicyName = PolicyName.PANTHERA
    nursery_fraction: float = 1.0 / 6.0
    survivor_fraction: float = 0.125
    tenuring_threshold: int = 3
    gc_threads: int = DEFAULT_GC_THREADS
    mutator_threads: int = DEFAULT_MUTATOR_THREADS
    mlp: int = DEFAULT_MLP
    card_size: int = 512
    large_array_threshold: int = 1 * MiB
    interleave_chunk_bytes: int = 1 * GiB
    card_padding: bool = True
    eager_promotion: bool = True
    dynamic_migration: bool = True
    kw_write_threshold: int = 2
    gc_ns_per_byte: float = 0.04
    #: Fixed safepoint + thread/class root-scan cost of every collection.
    gc_fixed_pause_ns: float = 200_000.0
    #: Fraction of eden's used bytes still live (in-flight aggregation
    #: buffers, iterator state) when a minor GC hits; they are copied to
    #: a survivor space.  This is the floor cost every scavenge pays in
    #: every configuration.
    minor_live_fraction: float = 0.4
    #: PSParallelCompact-style dense prefix: a full GC leaves the bottom
    #: of each old space unmoved while the accumulated dead space under
    #: the compaction cursor stays below this fraction of the space.
    dense_prefix_waste: float = 0.05
    #: Multiplier on static (background + refresh) power.  Down-scaled
    #: runs shrink traffic linearly but capacity x time quadratically;
    #: setting this to 1/scale restores the full-scale static/dynamic
    #: balance so normalised energy results are scale-invariant.
    static_energy_factor: float = 1.0
    #: Sensitivity knobs for the NVM technology: the paper quotes NVM
    #: read latency at "2-4x" DRAM and bandwidth at "1/8-1/3" of DRAM;
    #: these multipliers move the emulated device within that range
    #: (1.0 = Table 2's defaults).
    nvm_latency_factor: float = 1.0
    nvm_bandwidth_factor: float = 1.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.heap_bytes <= 0:
            raise ConfigError("heap_bytes must be positive")
        if self.dram_bytes < 0 or self.nvm_bytes < 0:
            raise ConfigError("memory capacities must be non-negative")
        if self.heap_bytes > self.total_memory_bytes:
            raise ConfigError(
                f"heap ({self.heap_bytes}) exceeds physical memory "
                f"({self.total_memory_bytes})"
            )
        if not 0.0 < self.nursery_fraction < 1.0:
            raise ConfigError("nursery_fraction must be in (0, 1)")
        if not 0.0 < self.survivor_fraction < 0.5:
            raise ConfigError("survivor_fraction must be in (0, 0.5)")
        if self.nursery_bytes > self.dram_bytes:
            raise ConfigError(
                "the young generation must fit in DRAM "
                f"(nursery {self.nursery_bytes} > DRAM {self.dram_bytes})"
            )

    @property
    def total_memory_bytes(self) -> int:
        """Combined physical DRAM + NVM capacity."""
        return self.dram_bytes + self.nvm_bytes

    @property
    def dram_ratio(self) -> float:
        """Fraction of physical memory that is DRAM."""
        return self.dram_bytes / self.total_memory_bytes

    @property
    def nursery_bytes(self) -> int:
        """Young generation size."""
        return int(self.heap_bytes * self.nursery_fraction)

    @property
    def old_gen_bytes(self) -> int:
        """Old generation size."""
        return self.heap_bytes - self.nursery_bytes

    @property
    def old_dram_bytes(self) -> int:
        """DRAM left over for the old generation once the nursery took its
        share (zero under policies that put the whole old gen in NVM)."""
        if self.policy is PolicyName.DRAM_ONLY:
            return self.old_gen_bytes
        if self.policy in (
            PolicyName.KINGSGUARD_NURSERY,
            PolicyName.KINGSGUARD_WRITES,
        ):
            # Kingsguard keeps only the nursery (and, for KW, a small
            # migration target) in DRAM; the old generation starts in NVM.
            if self.policy is PolicyName.KINGSGUARD_WRITES:
                return min(
                    self.old_gen_bytes,
                    max(0, self.dram_bytes - self.nursery_bytes),
                )
            return 0
        return min(self.old_gen_bytes, max(0, self.dram_bytes - self.nursery_bytes))

    @property
    def old_nvm_bytes(self) -> int:
        """NVM share of the old generation."""
        return self.old_gen_bytes - self.old_dram_bytes

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Every field as a JSON-safe dict, in field order.

        The canonical serialisation used by the experiment engine's
        content-addressed cache keys: enums become their values, so the
        output is stable across processes and Python versions.
        """
        out = dataclasses.asdict(self)
        out["policy"] = self.policy.value
        return out

    def fingerprint(self) -> str:
        """Stable SHA-256 content hash of this configuration."""
        import hashlib
        import json

        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()


def hybrid_config(
    heap_gb: float,
    dram_ratio: float,
    policy: PolicyName = PolicyName.PANTHERA,
    **kwargs,
) -> SystemConfig:
    """Build a hybrid-memory configuration the way the paper states them.

    The paper sizes physical memory to the heap and quotes "DRAM to memory
    ratio": a 64 GB heap at ratio 1/3 runs on ~21 GB DRAM + ~43 GB NVM.

    Args:
        heap_gb: managed heap size in GB.
        dram_ratio: DRAM fraction of total memory (1/4, 1/3, or 1.0).
        policy: placement policy.
        **kwargs: forwarded to :class:`SystemConfig`.
    """
    heap = int(heap_gb * GiB)
    dram = int(heap * dram_ratio)
    nvm = heap - dram
    return SystemConfig(
        heap_bytes=heap, dram_bytes=dram, nvm_bytes=nvm, policy=policy, **kwargs
    )


def dram_only_config(heap_gb: float, **kwargs) -> SystemConfig:
    """A configuration whose physical memory is DRAM only (the baseline)."""
    heap = int(heap_gb * GiB)
    return SystemConfig(
        heap_bytes=heap,
        dram_bytes=heap,
        nvm_bytes=0,
        policy=PolicyName.DRAM_ONLY,
        **kwargs,
    )
