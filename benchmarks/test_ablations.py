"""Section 5.3's ablations and the Write Rationing comparison (§5.2).

Paper claims reproduced here:
  * Card padding: "without this optimization, the GC time increases by
    60%" — disabling padding must raise Panthera's GC time substantially.
  * Eager promotion "contributes an average of 9% of the total GC
    performance improvement" — a smaller but positive effect.
  * Write Rationing (Kingsguard) "incurred an average of 41% performance
    overhead" — both KN and KW are far worse than Panthera on Spark.
  * Disabling dynamic monitoring/migration barely changes performance
    ("the performance difference was not noticeable", §5.5), since most
    of Panthera's benefit stems from pretenuring.
"""

import statistics

from repro.config import PolicyName
from repro.harness.configs import paper_config, write_rationing_configs

from benchmarks.conftest import BENCH_SCALE, print_and_report, run_grid

ABLATION_WORKLOADS = ("PR", "KM", "CC")


def _regroup(flat, workloads):
    """Regroup a flat {(workload, key): result} grid into nested rows."""
    out = {workload: {} for workload in workloads}
    for (workload, key), result in flat.items():
        out[workload][key] = result
    return out


def _run_ablations():
    base = paper_config(64, 1 / 3, PolicyName.PANTHERA, BENCH_SCALE)
    variants = {
        "panthera": base,
        "no-card-padding": base.replace(card_padding=False),
        "no-eager-promotion": base.replace(eager_promotion=False),
        "no-dynamic-migration": base.replace(dynamic_migration=False),
    }
    flat = run_grid(
        {
            (workload, key): (workload, cfg)
            for workload in ABLATION_WORKLOADS
            for key, cfg in variants.items()
        }
    )
    return _regroup(flat, ABLATION_WORKLOADS)


def test_panthera_feature_ablations(benchmark):
    results = benchmark.pedantic(_run_ablations, rounds=1, iterations=1)
    lines = [
        "| program | variant | time (s) | GC (s) | GC vs full Panthera |",
        "|---|---|---|---|---|",
    ]
    padding_ratios, eager_ratios, migration_ratios = [], [], []
    for workload in ABLATION_WORKLOADS:
        rows = results[workload]
        base_gc = rows["panthera"].gc_s
        for key, r in rows.items():
            ratio = r.gc_s / base_gc if base_gc else 0.0
            lines.append(
                f"| {workload} | {key} | {r.elapsed_s:.1f} | {r.gc_s:.1f} "
                f"| {ratio:.2f} |"
            )
        padding_ratios.append(rows["no-card-padding"].gc_s / base_gc)
        eager_ratios.append(rows["no-eager-promotion"].gc_s / base_gc)
        migration_ratios.append(
            rows["no-dynamic-migration"].elapsed_s / rows["panthera"].elapsed_s
        )
    lines.append("")
    lines.append(
        f"GC time without card padding: {statistics.mean(padding_ratios):.2f}x "
        "(paper: +60%)"
    )
    lines.append(
        f"GC time without eager promotion: {statistics.mean(eager_ratios):.2f}x "
        "(paper: eager promotion ~9% of the GC improvement)"
    )
    lines.append(
        f"time without dynamic migration: {statistics.mean(migration_ratios):.3f}x "
        "(paper: not noticeable)"
    )
    print_and_report("ablations", "§5.3/§5.5 ablations", lines)

    # Card padding is the dominant optimisation.
    assert statistics.mean(padding_ratios) > 1.3
    # Eager promotion helps, by less than padding.
    assert 0.95 <= statistics.mean(eager_ratios) <= statistics.mean(padding_ratios)
    # Dynamic migration is about generality, not raw speed.
    assert 0.9 <= statistics.mean(migration_ratios) <= 1.1


def _run_write_rationing():
    configs = write_rationing_configs(BENCH_SCALE)
    flat = run_grid(
        {
            (workload, key): (workload, cfg)
            for workload in ("PR", "KM")
            for key, cfg in configs.items()
        }
    )
    return _regroup(flat, ("PR", "KM"))


def test_write_rationing_baselines(benchmark):
    results = benchmark.pedantic(_run_write_rationing, rounds=1, iterations=1)
    lines = [
        "| program | config | time vs DRAM-only | GC vs DRAM-only |",
        "|---|---|---|---|",
    ]
    for workload, rows in results.items():
        base = rows["dram-only"]
        for key, r in rows.items():
            lines.append(
                f"| {workload} | {key} | {r.elapsed_s / base.elapsed_s:.2f} "
                f"| {r.gc_s / base.gc_s:.2f} |"
            )
    lines.append("")
    lines.append(
        "paper: Kingsguard-Writes averaged a 41% overhead on these "
        "workloads; Panthera 1-4%."
    )
    print_and_report("write_rationing", "§5.2 Write Rationing comparison", lines)

    for workload, rows in results.items():
        base = rows["dram-only"].elapsed_s
        # Kingsguard places all persisted RDDs in NVM: large overheads.
        assert rows["kingsguard-nursery"].elapsed_s > base * 1.08, workload
        assert rows["kingsguard-writes"].elapsed_s > base * 1.05, workload
        # Panthera beats both Write Rationing variants.
        assert rows["panthera"].elapsed_s < rows["kingsguard-nursery"].elapsed_s
        assert rows["panthera"].elapsed_s < rows["kingsguard-writes"].elapsed_s
