"""GC pause distribution across placement policies.

Section 5.3's mechanism, viewed through pause tails: NVM-resident
collection work (card scans at 10 GB/s, compaction) stretches individual
pauses, so the unmanaged layout's p99 pause is far worse than
DRAM-only's, while Panthera — whose padding removes the rescans — keeps
its pause tail near (or below) DRAM-only.  Pause tails are what stall a
synchronised cluster (see ``test_cluster_projection.py``).
"""

from repro.harness.configs import fig4_configs
from repro.harness.experiment import run_experiment

from benchmarks.conftest import BENCH_SCALE, print_and_report

PERCENTILES = (0.5, 0.9, 0.99, 1.0)


def _run_all():
    return {
        key: run_experiment("PR", cfg, scale=BENCH_SCALE, keep_context=True)
        for key, cfg in fig4_configs(BENCH_SCALE).items()
    }


def test_pause_distribution(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "| policy | p50 (ms) | p90 (ms) | p99 (ms) | max (ms) | mean (ms) |",
        "|---|---|---|---|---|---|",
    ]
    tails = {}
    for key, result in results.items():
        stats = result.context.collector.stats
        row = [f"| {key} "]
        for fraction in PERCENTILES:
            value = stats.pause_percentile(fraction)
            row.append(f"| {value:.1f} ")
            tails[(key, fraction)] = value
        row.append(f"| {stats.mean_pause_ms():.1f} |")
        lines.append("".join(row))
    lines.append("")
    lines.append(
        "note: Panthera's extreme tail is its rare major GCs (NVM "
        "compaction in one pause); its typical (p50/p90) pauses are the "
        "shortest of the three because padding removes the per-minor-GC "
        "rescans."
    )
    print_and_report(
        "pause_distribution", "GC pause distribution (PageRank)", lines
    )

    # Typical pauses: Panthera shortest, the unmanaged layout longest.
    for fraction in (0.5, 0.9):
        assert tails[("unmanaged", fraction)] >= tails[("dram-only", fraction)]
        assert tails[("panthera", fraction)] <= tails[("dram-only", fraction)]
