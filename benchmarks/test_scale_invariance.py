"""Scale-invariance validation.

DESIGN.md claims the *normalised* results (every figure's unit) are
invariant under joint heap + dataset scaling — that is what justifies
running the paper's 64/120 GB experiments at laptop scale.  This
benchmark runs Figure 4's PageRank comparison at two different scales
and checks the normalised time/energy ratios agree.
"""

from repro.harness.configs import fig4_configs
from repro.harness.experiment import run_experiment

from benchmarks.conftest import print_and_report

SCALES = (0.05, 0.15)


def _run(scale):
    return {
        key: run_experiment("PR", cfg, scale=scale)
        for key, cfg in fig4_configs(scale).items()
    }


def _normalized(results):
    base = results["dram-only"]
    return {
        key: (r.elapsed_s / base.elapsed_s, r.energy_j / base.energy_j)
        for key, r in results.items()
    }


def test_normalized_shapes_scale_invariant(benchmark):
    per_scale = benchmark.pedantic(
        lambda: {scale: _normalized(_run(scale)) for scale in SCALES},
        rounds=1,
        iterations=1,
    )
    lines = [
        "| scale | unmanaged time | panthera time | unmanaged energy | panthera energy |",
        "|---|---|---|---|---|",
    ]
    for scale, rows in per_scale.items():
        lines.append(
            f"| {scale} | {rows['unmanaged'][0]:.3f} | {rows['panthera'][0]:.3f} "
            f"| {rows['unmanaged'][1]:.3f} | {rows['panthera'][1]:.3f} |"
        )
    print_and_report(
        "scale_invariance", "Scale invariance of normalised results", lines
    )

    small, large = (per_scale[s] for s in SCALES)
    for key in ("unmanaged", "panthera"):
        # Time ratios agree within 6 %, energy within 10 %.
        assert abs(small[key][0] - large[key][0]) < 0.06, key
        assert abs(small[key][1] - large[key][1]) < 0.10, key
