"""Figure 4: overall performance and energy, 64 GB heap, 1/3 DRAM.

Paper shape (normalised to 64 GB DRAM-only, averaged over 7 programs):
  unmanaged: 1.21x time, 0.69x energy
  Panthera:  1.04x time, 0.63x energy
Per-benchmark paper rows are embedded below for side-by-side reporting.
"""

import statistics

from repro.harness.configs import fig4_configs

from benchmarks.conftest import (
    ALL_WORKLOADS,
    BENCH_SCALE,
    norm,
    print_and_report,
    run_grid,
)

#: Figure 4's bar values: workload -> (unmanaged time, panthera time,
#: unmanaged energy, panthera energy).
PAPER = {
    "PR": (1.25, 1.11, 0.71, 0.66),
    "KM": (1.15, 0.91, 0.66, 0.56),
    "LR": (1.15, 0.99, 0.68, 0.61),
    "TC": (1.37, 1.24, 0.74, 0.70),
    "CC": (1.18, 0.96, 0.69, 0.61),
    "SSSP": (1.15, 1.01, 0.66, 0.64),
    "BC": (1.25, 1.08, 0.69, 0.60),
}


def _run_all():
    configs = fig4_configs(BENCH_SCALE)
    flat = run_grid(
        {
            (workload, key): (workload, cfg)
            for workload in ALL_WORKLOADS
            for key, cfg in configs.items()
        }
    )
    out = {workload: {} for workload in ALL_WORKLOADS}
    for (workload, key), result in flat.items():
        out[workload][key] = result
    return out


def test_fig4_time_and_energy(benchmark):
    all_results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "| program | unmanaged time (meas/paper) | panthera time (meas/paper) "
        "| unmanaged energy (meas/paper) | panthera energy (meas/paper) |",
        "|---|---|---|---|---|",
    ]
    unmanaged_times, panthera_times = [], []
    unmanaged_energy, panthera_energy = [], []
    for workload in ALL_WORKLOADS:
        n = norm(all_results[workload], "dram-only")
        p = PAPER[workload]
        lines.append(
            f"| {workload} "
            f"| {n['unmanaged']['time']:.2f} / {p[0]:.2f} "
            f"| {n['panthera']['time']:.2f} / {p[1]:.2f} "
            f"| {n['unmanaged']['energy']:.2f} / {p[2]:.2f} "
            f"| {n['panthera']['energy']:.2f} / {p[3]:.2f} |"
        )
        unmanaged_times.append(n["unmanaged"]["time"])
        panthera_times.append(n["panthera"]["time"])
        unmanaged_energy.append(n["unmanaged"]["energy"])
        panthera_energy.append(n["panthera"]["energy"])
    lines.append("")
    lines.append(
        f"measured averages: unmanaged {statistics.mean(unmanaged_times):.3f}x time / "
        f"{statistics.mean(unmanaged_energy):.3f}x energy; panthera "
        f"{statistics.mean(panthera_times):.3f}x time / "
        f"{statistics.mean(panthera_energy):.3f}x energy"
    )
    lines.append("paper averages: unmanaged 1.214x / 0.690x; panthera 1.043x / 0.626x")
    print_and_report("fig4", "Figure 4: 64 GB heap, 1/3 DRAM", lines)

    # Shape assertions per program: unmanaged slower than DRAM-only,
    # Panthera at most unmanaged; both save energy.
    for workload in ALL_WORKLOADS:
        n = norm(all_results[workload], "dram-only")
        assert n["unmanaged"]["time"] >= 0.99, workload
        assert n["panthera"]["time"] <= n["unmanaged"]["time"] + 0.02, workload
        assert n["unmanaged"]["energy"] < 1.0, workload
        assert n["panthera"]["energy"] <= n["unmanaged"]["energy"] + 0.02, workload
    assert statistics.mean(unmanaged_times) > 1.0
    assert statistics.mean(panthera_energy) < 0.75
