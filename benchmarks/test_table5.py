"""Table 5: dynamic monitoring and migration under Panthera.

Paper rows (calls monitored / RDDs migrated):
  PR 328/0, KM 550/0, LR 333/0, TC 217/0, CC 2945/1, SSSP 3632/1, BC 336/0.
Shape: monitoring is negligible-overhead; only the GraphX programs (whose
unpersist pattern the static analysis cannot see) trigger migration.
"""

from repro.config import PolicyName
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment

from benchmarks.conftest import ALL_WORKLOADS, BENCH_SCALE, print_and_report

PAPER = {
    "PR": (328, 0),
    "KM": (550, 0),
    "LR": (333, 0),
    "TC": (217, 0),
    "CC": (2945, 1),
    "SSSP": (3632, 1),
    "BC": (336, 0),
}


def _run_all():
    out = {}
    for workload in ALL_WORKLOADS:
        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, BENCH_SCALE)
        out[workload] = run_experiment(
            workload, cfg, scale=BENCH_SCALE, keep_context=True
        )
    return out


def test_table5_monitoring_and_migration(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "| program | calls monitored (meas/paper) | RDDs migrated (meas/paper) "
        "| monitoring overhead |",
        "|---|---|---|---|",
    ]
    for workload in ALL_WORKLOADS:
        r = results[workload]
        paper_calls, paper_migrated = PAPER[workload]
        overhead = r.context.monitor.overhead_ns / 1e9 / r.elapsed_s
        lines.append(
            f"| {workload} | {r.monitored_calls} / {paper_calls} "
            f"| {r.migrated_rdds} / {paper_migrated} | {100 * overhead:.3f}% |"
        )
    print_and_report("table5", "Table 5: monitoring and migration", lines)

    for workload in ALL_WORKLOADS:
        r = results[workload]
        # Monitoring overhead < 1 % (§5.5).
        assert r.context.monitor.overhead_ns / 1e9 < 0.01 * r.elapsed_s
        # Only the GraphX programs migrate.
        if workload in ("CC", "SSSP"):
            assert r.migrated_rdds >= 1, workload
        else:
            assert r.migrated_rdds == 0, workload
        assert r.monitored_calls > 0
