"""Sensitivity to the NVM technology point.

The paper's introduction quotes a *range* for emerging NVMs — read
latency "2-4x larger" than DRAM, bandwidth "about 1/8-1/3" of DRAM —
and evaluates one point (2.5x / 1/3).  This sweep moves the emulated
device across that range and checks the conclusion is robust: Panthera
dominates the unmanaged layout everywhere, and its *advantage widens*
as NVM gets worse (the slower the NVM, the more semantics-aware
placement matters).
"""

from repro.config import PolicyName
from repro.harness.configs import paper_config

from benchmarks.conftest import BENCH_SCALE, print_and_report, run_grid

#: (label, latency factor, bandwidth factor) — relative to Table 2's
#: 300 ns / 10 GB/s point.
TECH_POINTS = [
    ("optimistic (2x lat, 1/3 bw)", 0.8, 1.0),
    ("paper (2.5x lat, 1/3 bw)", 1.0, 1.0),
    ("pessimistic (4x lat, 1/6 bw)", 1.6, 0.5),
    ("worst-case (4x lat, 1/8 bw)", 1.6, 0.375),
]


def _run_sweep():
    cells = {}
    for label, lat, bw in TECH_POINTS:
        for policy in (
            PolicyName.DRAM_ONLY,
            PolicyName.UNMANAGED,
            PolicyName.PANTHERA,
        ):
            cfg = paper_config(
                64,
                1 / 3,
                policy,
                BENCH_SCALE,
                nvm_latency_factor=lat,
                nvm_bandwidth_factor=bw,
            )
            cells[(label, policy.value)] = ("PR", cfg)
    flat = run_grid(cells)
    out = {label: {} for label, _, _ in TECH_POINTS}
    for (label, policy), result in flat.items():
        out[label][policy] = result
    return out


def test_nvm_technology_sweep(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    lines = [
        "| NVM point | unmanaged time | panthera time | unmanaged energy | panthera energy |",
        "|---|---|---|---|---|",
    ]
    advantage = []
    for label, row in results.items():
        base = row["dram-only"]
        unmanaged_t = row["unmanaged"].elapsed_s / base.elapsed_s
        panthera_t = row["panthera"].elapsed_s / base.elapsed_s
        lines.append(
            f"| {label} | {unmanaged_t:.3f} | {panthera_t:.3f} "
            f"| {row['unmanaged'].energy_j / base.energy_j:.3f} "
            f"| {row['panthera'].energy_j / base.energy_j:.3f} |"
        )
        advantage.append(unmanaged_t - panthera_t)
    lines.append("")
    lines.append(
        "Panthera's time advantage over the unmanaged layout per point: "
        + ", ".join(f"{a:.3f}" for a in advantage)
    )
    print_and_report(
        "nvm_sensitivity", "NVM technology sensitivity sweep (PageRank)", lines
    )

    # Panthera beats unmanaged at every technology point...
    assert all(a > 0 for a in advantage)
    # ...and the advantage at the worst-case NVM exceeds the optimistic one.
    assert advantage[-1] > advantage[0]
    # Hybrid still saves energy even at the worst point.
    worst = results[TECH_POINTS[-1][0]]
    assert (
        worst["panthera"].energy_j < worst["dram-only"].energy_j
    )
