"""§5.2's cluster-scale argument, quantified.

"The negative impact of the GC latency increases with the number of
compute nodes ... we expect Panthera to provide even greater benefit
when Spark is executed on a large NVM cluster."

Projection: scatter each policy's measured pause profile over independent
nodes with synchronised stages and report the cluster slowdown at
K in {1, 4, 16, 64}.  The unmanaged layout's long NVM-bound pauses
amplify much faster than Panthera's.
"""

from repro.cluster.projection import project_cluster
from repro.harness.configs import fig4_configs
from repro.harness.experiment import run_experiment

from benchmarks.conftest import BENCH_SCALE, print_and_report

CLUSTER_SIZES = (1, 4, 16, 64)


def _run_all():
    results = {}
    for key, cfg in fig4_configs(BENCH_SCALE).items():
        results[key] = run_experiment(
            "PR", cfg, scale=BENCH_SCALE, keep_context=True
        )
    return results


def test_cluster_scale_projection(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "| policy | " + " | ".join(f"K={k} slowdown" for k in CLUSTER_SIZES) + " |",
        "|---|" + "|".join("---" for _ in CLUSTER_SIZES) + "|",
    ]
    slowdowns = {}
    for key, result in results.items():
        row = [f"| {key} "]
        for k in CLUSTER_SIZES:
            projection = project_cluster(result, nodes=k)
            slowdowns[(key, k)] = projection.slowdown
            row.append(f"| {projection.slowdown:.3f} ")
        row.append("|")
        lines.append("".join(row))
    lines.append("")
    lines.append(
        "paper (§5.2): GC pauses on one node stall the whole cluster; "
        "Panthera's benefit grows with node count."
    )
    print_and_report(
        "cluster_projection", "§5.2 cluster-scale projection", lines
    )

    for key in results:
        # Slowdown is monotone in cluster size.
        series = [slowdowns[(key, k)] for k in CLUSTER_SIZES]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), key
    # The paper's claim is about absolute benefit at scale: Panthera's
    # cluster time stays below the unmanaged baseline's at every K, and
    # its absolute advantage does not shrink as the cluster grows.
    single_advantage = (
        results["unmanaged"].elapsed_s - results["panthera"].elapsed_s
    )
    for k in CLUSTER_SIZES[1:]:
        unmanaged_cluster = slowdowns[("unmanaged", k)] * results["unmanaged"].elapsed_s
        panthera_cluster = slowdowns[("panthera", k)] * results["panthera"].elapsed_s
        assert panthera_cluster < unmanaged_cluster, k
        assert (
            unmanaged_cluster - panthera_cluster >= single_advantage * 0.95
        ), k
