"""Figure 2(c): PageRank on 32 GB DRAM vs 32+88 GB hybrid (unmanaged and
Panthera), normalised to 120 GB DRAM-only.

Paper series (time / energy, normalised to 120 GB DRAM):
  32 GB DRAM-only:      1.42 / 0.55
  hybrid, unmanaged:    1.23 / 0.81
  hybrid, Panthera:     1.00 / 0.60
Shape: the small-DRAM machine is slowest but cheapest in energy; adding
NVM unmanaged helps time but wastes energy; Panthera restores 120 GB-DRAM
performance at near-32 GB energy.
"""

from repro.harness.configs import fig2c_configs

from benchmarks.conftest import BENCH_SCALE, norm, print_and_report, run_grid

PAPER = {
    "120gb-dram": (1.00, 1.00),
    "32gb-dram": (1.42, 0.55),
    "hybrid-unmanaged": (1.23, 0.81),
    "hybrid-panthera": (1.00, 0.60),
}


def _run_grid():
    return run_grid(
        {key: ("PR", cfg) for key, cfg in fig2c_configs(BENCH_SCALE).items()}
    )


def test_fig2c_pagerank_motivating_example(benchmark):
    results = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    normalized = norm(results, "120gb-dram")
    lines = [
        "| configuration | time (measured) | time (paper) | energy (measured) | energy (paper) |",
        "|---|---|---|---|---|",
    ]
    for key, (paper_t, paper_e) in PAPER.items():
        row = normalized[key]
        lines.append(
            f"| {key} | {row['time']:.2f} | {paper_t:.2f} "
            f"| {row['energy']:.2f} | {paper_e:.2f} |"
        )
    print_and_report("fig2c", "Figure 2(c): PageRank over hybrid memory", lines)

    # Shape assertions: the orderings that are robust in the simulator.
    # (The 32 GB machine's *large* time penalty — 1.42x in the paper —
    # is under-reproduced: our block manager spills/evicts too gracefully
    # compared with real Spark's thrash; see EXPERIMENTS.md.)
    assert normalized["32gb-dram"]["time"] >= 0.98  # never meaningfully faster
    assert (
        normalized["hybrid-panthera"]["time"]
        <= normalized["hybrid-unmanaged"]["time"]
    )
    assert normalized["hybrid-panthera"]["time"] <= normalized["32gb-dram"]["time"]
    assert normalized["hybrid-unmanaged"]["time"] > 1.02  # unmanaged pays time
    assert normalized["32gb-dram"]["energy"] < 0.7  # least memory = least energy
    assert (
        normalized["32gb-dram"]["energy"]
        < normalized["hybrid-panthera"]["energy"]
        < 1.0
    )
