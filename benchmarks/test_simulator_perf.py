"""Microbenchmarks of the simulator substrate itself.

These are conventional pytest-benchmark measurements (multiple rounds) of
the hot paths: allocation, minor/major GC, static analysis and a full
small experiment — useful for tracking simulator performance regressions.

The benchmark bodies live in :mod:`repro.bench` and are shared with the
``repro bench`` CLI harness, so the interactive pytest table and the
JSON regression gate measure exactly the same setups.
"""

from repro.bench import (
    make_stack,  # noqa: F401 - re-exported for external users of this module
    setup_ephemeral_churn,
    setup_major_gc,
    setup_minor_gc,
    setup_static_analysis,
)
from repro.config import PolicyName
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment


def test_perf_ephemeral_allocation(benchmark):
    benchmark(setup_ephemeral_churn())


def test_perf_minor_gc(benchmark):
    benchmark(setup_minor_gc())


def test_perf_major_gc(benchmark):
    benchmark(setup_major_gc())


def test_perf_static_analysis(benchmark):
    benchmark(setup_static_analysis())


def test_perf_full_pagerank_experiment(benchmark):
    scale = 0.02
    config = paper_config(64, 1 / 3, PolicyName.PANTHERA, scale)

    def run():
        return run_experiment(
            "PR", config, scale=scale, workload_kwargs={"iterations": 3}
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
