"""Microbenchmarks of the simulator substrate itself.

These are conventional pytest-benchmark measurements (multiple rounds) of
the hot paths: allocation, minor/major GC, static analysis and a full
small experiment — useful for tracking simulator performance regressions.
"""

from repro.config import MiB, PolicyName
from repro.core.static_analysis import analyze_program
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.heap.object_model import ObjKind
from repro.workloads.pagerank import build_pagerank

from repro.config import SystemConfig
from repro.core.monitor import AccessMonitor
from repro.gc.collector import Collector
from repro.gc.policies import make_policy
from repro.heap.layout import HEAP_BASE, young_span_bytes
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine


class _Stack:
    """A minimal machine + heap + collector bundle for microbenchmarks."""

    def __init__(self, policy: PolicyName) -> None:
        heap = 48 * MiB
        dram = heap if policy is PolicyName.DRAM_ONLY else heap // 3
        config = SystemConfig(
            heap_bytes=heap,
            dram_bytes=dram,
            nvm_bytes=heap - dram,
            policy=policy,
            interleave_chunk_bytes=MiB,
            large_array_threshold=64 * 1024,
        )
        self.machine = Machine(config)
        self.policy = make_policy(config)
        old = self.policy.build_old_spaces(HEAP_BASE + young_span_bytes(config))
        self.heap = ManagedHeap(
            config, self.machine, old, card_padding=self.policy.card_padding
        )
        self.collector = Collector(
            self.heap, self.machine, self.policy, monitor=AccessMonitor()
        )


def make_stack(policy: PolicyName) -> _Stack:
    return _Stack(policy)


def test_perf_ephemeral_allocation(benchmark):
    stack = make_stack(PolicyName.PANTHERA)

    def churn():
        for _ in range(64):
            stack.heap.allocate_ephemeral(256 * 1024)

    benchmark(churn)


def test_perf_minor_gc(benchmark):
    stack = make_stack(PolicyName.PANTHERA)
    for i in range(32):
        obj = stack.heap.new_object(ObjKind.DATA, 64 * 1024)
        stack.heap.add_root(obj)

    def collect():
        stack.heap.allocate_ephemeral(MiB)
        stack.collector.collect_minor()

    benchmark(collect)


def test_perf_major_gc(benchmark):
    stack = make_stack(PolicyName.PANTHERA)
    for i in range(16):
        array = stack.heap.allocate_rdd_array(256 * 1024, rdd_id=i)
        if i % 2 == 0:
            stack.heap.add_root(array)

    benchmark(stack.collector.collect_major)


def test_perf_static_analysis(benchmark):
    spec = build_pagerank(scale=0.02, iterations=10)

    benchmark(analyze_program, spec.program)


def test_perf_full_pagerank_experiment(benchmark):
    scale = 0.02
    config = paper_config(64, 1 / 3, PolicyName.PANTHERA, scale)

    def run():
        return run_experiment(
            "PR", config, scale=scale, workload_kwargs={"iterations": 3}
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
