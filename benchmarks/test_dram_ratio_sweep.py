"""DRAM-ratio sweep beyond the paper's two points.

The paper evaluates 1/4 and 1/3 DRAM; this sweep extends the axis from
1/6 to 1/2 to expose the trade-off curve: energy savings shrink as DRAM
grows, while Panthera's time overhead melts away once the DRAM component
of the old generation can hold the hot working set.  ("Panthera is more
sensitive to the DRAM ratio than the heap size", §5.3.)

1/8 is deliberately absent: with a 1/6-heap nursery that must live in
DRAM, a 1/8 DRAM share is physically impossible — the same constraint
that kept the paper from using "a very small DRAM ratio" (§5.2).
"""

from repro.config import PolicyName
from repro.harness.configs import paper_config

from benchmarks.conftest import BENCH_SCALE, print_and_report, run_grid

RATIOS = (1 / 6, 1 / 4, 1 / 3, 1 / 2)


def _run_sweep():
    cells = {
        "baseline": ("KM", paper_config(64, 1.0, PolicyName.DRAM_ONLY, BENCH_SCALE))
    }
    for ratio in RATIOS:
        for policy in (PolicyName.UNMANAGED, PolicyName.PANTHERA):
            cells[(ratio, policy.value)] = (
                "KM",
                paper_config(64, ratio, policy, BENCH_SCALE),
            )
    return run_grid(cells)


def test_dram_ratio_sweep(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    base = results["baseline"]
    lines = [
        "| DRAM ratio | unmanaged time | panthera time | unmanaged energy | panthera energy |",
        "|---|---|---|---|---|",
    ]
    table = {}
    for ratio in RATIOS:
        row = [f"| 1/{round(1 / ratio)} "]
        for policy in ("unmanaged", "panthera"):
            r = results[(ratio, policy)]
            time_n = r.elapsed_s / base.elapsed_s
            energy_n = r.energy_j / base.energy_j
            table[(ratio, policy)] = (time_n, energy_n)
        row.append(f"| {table[(ratio, 'unmanaged')][0]:.3f} ")
        row.append(f"| {table[(ratio, 'panthera')][0]:.3f} ")
        row.append(f"| {table[(ratio, 'unmanaged')][1]:.3f} ")
        row.append(f"| {table[(ratio, 'panthera')][1]:.3f} |")
        lines.append("".join(row))
    print_and_report("dram_ratio_sweep", "DRAM-ratio sweep (K-Means)", lines)

    # Energy: more DRAM = less saving, monotonically, for both policies.
    for policy in ("unmanaged", "panthera"):
        energies = [table[(r, policy)][1] for r in RATIOS]
        assert all(b >= a - 0.02 for a, b in zip(energies, energies[1:])), policy
        assert energies[0] < 1.0 and energies[-1] < 1.0
    # Time: Panthera at or below unmanaged at every ratio.
    for ratio in RATIOS:
        assert table[(ratio, "panthera")][0] <= table[(ratio, "unmanaged")][0] + 0.02
    # Panthera's time improves (or holds) as DRAM grows.
    panthera_times = [table[(r, "panthera")][0] for r in RATIOS]
    assert panthera_times[-1] <= panthera_times[0] + 0.02
