"""Shared benchmark infrastructure.

Every figure/table of the paper's evaluation (§5) has one benchmark file
here.  Each runs its experiment grid once (wrapped in
``benchmark.pedantic`` so ``pytest benchmarks/ --benchmark-only`` both
times the simulator and regenerates the figure), prints the reproduced
rows next to the paper's numbers, and writes a markdown report under
``benchmarks/results/``.

``REPRO_BENCH_SCALE`` (default 0.1) jointly scales heaps and datasets;
shapes are scale-invariant by design (see DESIGN.md).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List, Mapping, Sequence, Tuple

import pytest

from repro.config import SystemConfig
from repro.harness.engine import run_points
from repro.harness.experiment import ExperimentResult

#: Joint data/heap scale for benchmark runs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))

#: Worker processes for the experiment grids (1 = serial; results are
#: bit-identical either way, so crank this up freely).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Optional content-addressed result cache shared by all grids; re-runs
#: at the same scale and code version skip finished cells.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None

#: All seven Table 4 programs.
ALL_WORKLOADS = ("PR", "KM", "LR", "TC", "CC", "SSSP", "BC")

#: The four programs used by Figures 6 and 7.
GRID_WORKLOADS = ("PR", "LR", "CC", "BC")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_grid(
    cells: Mapping[object, Tuple[str, SystemConfig]],
    scale: float = BENCH_SCALE,
) -> Dict[object, ExperimentResult]:
    """Run a keyed ``{key: (workload, config)}`` grid through the engine.

    One flat engine call per figure: ``REPRO_BENCH_JOBS`` fans the cells
    across worker processes and ``REPRO_BENCH_CACHE`` lets repeated runs
    (CI retries, report tweaking) skip completed cells.
    """
    return run_points(cells, scale, jobs=BENCH_JOBS, cache_dir=BENCH_CACHE)


def write_report(name: str, title: str, lines: Sequence[str]) -> pathlib.Path:
    """Persist one reproduced figure/table as markdown."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    body = [f"# {title}", "", f"(scale = {BENCH_SCALE})", ""]
    body.extend(lines)
    path.write_text("\n".join(body) + "\n")
    return path


def norm(results: Dict[str, ExperimentResult], baseline: str) -> Dict[str, Dict[str, float]]:
    """Normalise time/energy against a baseline key."""
    base = results[baseline]
    return {
        key: {
            "time": r.elapsed_s / base.elapsed_s,
            "energy": r.energy_j / base.energy_j,
            "gc": (r.gc_s / base.gc_s) if base.gc_s else 0.0,
        }
        for key, r in results.items()
    }


def print_and_report(name: str, title: str, lines: List[str]) -> None:
    """Print a reproduced figure and persist it."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(line)
    write_report(name, title, lines)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """The session's joint scale factor."""
    return BENCH_SCALE
