"""Figure 8: GraphX-CC memory read/write bandwidth over time, unmanaged
vs Panthera (DRAM ratio 1/3).

Paper shape: under the unmanaged layout most traffic (and its high
instantaneous peaks) hits NVM; Panthera migrates the frequently accessed
data to DRAM, shrinking both total NVM traffic and its peaks.
"""

from repro.config import DeviceKind
from repro.harness.configs import fig4_configs
from repro.harness.experiment import run_experiment

from benchmarks.conftest import BENCH_SCALE, print_and_report


def _run_both():
    configs = fig4_configs(BENCH_SCALE)
    return {
        policy: run_experiment(
            "CC",
            configs[policy],
            scale=BENCH_SCALE,
            keep_context=True,
            bandwidth_window_ns=1e9,
        )
        for policy in ("unmanaged", "panthera")
    }


def _sparkline(series, buckets=24):
    """Render a bandwidth series as a coarse text sparkline."""
    if not series:
        return "(no traffic)"
    blocks = " .:-=+*#%@"
    peak = max(s.gbps for s in series) or 1.0
    step = max(1, len(series) // buckets)
    cells = []
    for i in range(0, len(series), step):
        window = series[i : i + step]
        level = max(s.gbps for s in window) / peak
        cells.append(blocks[min(len(blocks) - 1, int(level * (len(blocks) - 1)))])
    return "".join(cells) + f"  (peak {peak:.1f} GB/s)"


def test_fig8_cc_bandwidth_traces(benchmark):
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    lines = []
    stats = {}
    for policy, result in results.items():
        bw = result.context.machine.bandwidth
        lines.append(f"**{policy}**")
        lines.append("")
        for device in (DeviceKind.DRAM, DeviceKind.NVM):
            for is_write, label in ((False, "read"), (True, "write")):
                series = bw.series(device, is_write)
                total = bw.total_bytes(device, is_write) / 2**30
                peak = bw.peak_gbps(device, is_write)
                stats[(policy, device, is_write)] = (total, peak)
                lines.append(
                    f"- {device.value} {label}: total {total:.1f} GiB, "
                    f"peak {peak:.1f} GB/s"
                )
                lines.append(f"  `{_sparkline(series)}`")
        lines.append("")
    print_and_report("fig8", "Figure 8: GraphX-CC bandwidth over time", lines)

    # Panthera moves traffic from NVM to DRAM (§5.4).
    unm_nvm_reads = stats[("unmanaged", DeviceKind.NVM, False)][0]
    pan_nvm_reads = stats[("panthera", DeviceKind.NVM, False)][0]
    assert pan_nvm_reads < unm_nvm_reads
    # And it reduces NVM's peak instantaneous read bandwidth.
    unm_nvm_peak = stats[("unmanaged", DeviceKind.NVM, False)][1]
    pan_nvm_peak = stats[("panthera", DeviceKind.NVM, False)][1]
    assert pan_nvm_peak <= unm_nvm_peak + 0.5
    # DRAM keeps a healthy share of traffic under Panthera.
    pan_dram_reads = stats[("panthera", DeviceKind.DRAM, False)][0]
    assert pan_dram_reads > pan_nvm_reads
