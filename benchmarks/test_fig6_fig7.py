"""Figures 6 and 7: two heaps (64/120 GB) x two DRAM ratios (1/4, 1/3),
time and energy, for PR, LR, CC and BC.

Paper averages:
  time overhead (Panthera):  9.5% (64GB,1/4), 3.4% (64GB,1/3),
                             2.1% (120GB,1/4), 0% (120GB,1/3)
  time overhead (unmanaged): 25.9%, 20.9%, 23.9%, 19.3%
  energy (Panthera):   0.583 (64,1/4), 0.620 (64,1/3),
                       0.430 (120,1/4), 0.483 (120,1/3)
  energy (unmanaged):  0.633, 0.693, 0.498, 0.565
Shapes: Panthera is more sensitive to the DRAM ratio than to heap size;
unmanaged barely improves with more DRAM; the 120 GB heap saves more
energy than the 64 GB heap.
"""

import statistics

from repro.harness.configs import grid_configs

from benchmarks.conftest import (
    BENCH_SCALE,
    GRID_WORKLOADS,
    print_and_report,
    run_grid,
)


def _run_grid():
    configs = grid_configs(BENCH_SCALE)
    flat = run_grid(
        {
            (workload, key): (workload, cfg)
            for workload in GRID_WORKLOADS
            for key, cfg in configs.items()
        }
    )
    out = {workload: {} for workload in GRID_WORKLOADS}
    for (workload, key), result in flat.items():
        out[workload][key] = result
    return out


def _cell(results, workload, heap, ratio, policy, metric):
    r = results[workload][f"{heap}gb-{ratio}-{policy}"]
    base = results[workload][f"{heap}gb-dram-only"]
    if metric == "time":
        return r.elapsed_s / base.elapsed_s
    return r.energy_j / base.energy_j


def test_fig6_time_and_fig7_energy_grid(benchmark):
    results = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    time_lines = [
        "| program | 1/4 unmanaged | 1/4 panthera | 1/3 unmanaged | 1/3 panthera | heap |",
        "|---|---|---|---|---|---|",
    ]
    energy_lines = list(time_lines)
    cells = {"time": {}, "energy": {}}
    for heap in (64, 120):
        for workload in GRID_WORKLOADS:
            for metric, lines in (("time", time_lines), ("energy", energy_lines)):
                row = [f"| {workload} "]
                for ratio in ("quarter", "third"):
                    for policy in ("unmanaged", "panthera"):
                        value = _cell(results, workload, heap, ratio, policy, metric)
                        cells[metric][(heap, ratio, policy, workload)] = value
                        row.append(f"| {value:.2f} ")
                row.append(f"| {heap} GB |")
                lines.append("".join(row))
    print_and_report("fig6", "Figure 6: normalised time grid", time_lines)
    print_and_report("fig7", "Figure 7: normalised energy grid", energy_lines)

    def mean(metric, heap, ratio, policy):
        return statistics.mean(
            cells[metric][(heap, ratio, policy, w)] for w in GRID_WORKLOADS
        )

    # Panthera's DRAM-ratio sensitivity (§5.3): 1/3 DRAM is at least as
    # fast as 1/4 DRAM on both heaps.
    for heap in (64, 120):
        assert mean("time", heap, "third", "panthera") <= mean(
            "time", heap, "quarter", "panthera"
        ) + 0.02
    # Panthera beats unmanaged everywhere.
    for heap in (64, 120):
        for ratio in ("quarter", "third"):
            assert mean("time", heap, ratio, "panthera") < mean(
                "time", heap, ratio, "unmanaged"
            )
    # Smaller DRAM ratio saves more energy (less DRAM static power).
    for heap in (64, 120):
        for policy in ("unmanaged", "panthera"):
            assert mean("energy", heap, "quarter", policy) <= mean(
                "energy", heap, "third", policy
            ) + 0.02
    # Hybrid memory always saves energy.
    for key, value in cells["energy"].items():
        assert value < 1.0, key
