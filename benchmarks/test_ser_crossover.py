"""GC time vs (de)serialization time: the serialized-tier crossover.

The policy axis of "Garbage Collection or Serialization? Between a Rock
and a Hard Place!" (arXiv 2111.10589), reproduced on the Panthera
simulator: persist a workload's cached RDD either in the object heap
(``MEMORY_ONLY`` — GC traces it every collection, and under memory
pressure the block manager drops and lineage recomputes it) or in the
serialized off-heap tier (``MEMORY_ONLY_SER`` — invisible to GC, but
every access pays deserialization CPU).

Sweeping the heap size makes the two regimes cross:

* Small heaps: the object-heap block does not fit next to the working
  set, so it is dropped and recomputed every iteration — the serialized
  tier wins despite its per-access deserialization tax.
* Large heaps: the object-heap block stays resident and GC tracing is
  cheap — deserialization dominates and the object heap wins.

KM and LR (the cached-training-set workloads, §1.2's first category)
both exhibit the crossover; the report records where it lands.
"""

from repro.config import PolicyName
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.spark.storage import StorageLevel

from benchmarks.conftest import BENCH_SCALE, print_and_report

#: Cached-RDD workloads whose persist level the experiment flips.
WORKLOADS = ("KM", "LR")

#: Pre-scale heap sizes (GB) spanning the drop-and-recompute regime
#: (36-40), the crossover (40-44) and the resident regime (44+).
HEAPS_GB = (36, 40, 44, 48, 64)

ITERATIONS = 4

MODES = {
    "object-heap": StorageLevel.MEMORY_ONLY,
    "serialized": StorageLevel.MEMORY_ONLY_SER,
}


def _run_all():
    # run_experiment directly (not the engine): the assertions need the
    # live context's block-manager drop counters, which do not cross the
    # engine's worker-process boundary.
    results = {}
    for workload in WORKLOADS:
        for heap_gb in HEAPS_GB:
            for mode, level in MODES.items():
                config = paper_config(
                    heap_gb, 1 / 3, PolicyName.PANTHERA, BENCH_SCALE
                )
                results[(workload, heap_gb, mode)] = run_experiment(
                    workload,
                    config,
                    scale=BENCH_SCALE,
                    workload_kwargs={
                        "iterations": ITERATIONS,
                        "persist_level": level,
                    },
                    keep_context=True,
                )
    return results


def test_ser_crossover(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "| program | heap (GB) | elapsed obj (s) | elapsed ser (s) "
        "| GC obj (s) | GC ser (s) | drops obj | winner |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for workload in WORKLOADS:
        for heap_gb in HEAPS_GB:
            obj = results[(workload, heap_gb, "object-heap")]
            ser = results[(workload, heap_gb, "serialized")]
            winner = (
                "serialized" if ser.elapsed_s < obj.elapsed_s else "object-heap"
            )
            drops = obj.context.block_manager.dropped_count
            lines.append(
                f"| {workload} | {heap_gb} | {obj.elapsed_s:.1f} "
                f"| {ser.elapsed_s:.1f} | {obj.gc_s:.1f} | {ser.gc_s:.1f} "
                f"| {drops} | {winner} |"
            )
    print_and_report(
        "ser_crossover",
        "GC vs (de)serialization: the serialized-tier crossover",
        lines,
    )

    for workload in WORKLOADS:
        small_obj = results[(workload, HEAPS_GB[0], "object-heap")]
        small_ser = results[(workload, HEAPS_GB[0], "serialized")]
        large_obj = results[(workload, HEAPS_GB[-1], "object-heap")]
        large_ser = results[(workload, HEAPS_GB[-1], "serialized")]
        # Small heap: the object block thrashes (dropped + recomputed)
        # while the tier block sits outside the old generation.
        assert small_obj.context.block_manager.dropped_count > 0, workload
        assert small_ser.context.block_manager.dropped_count == 0, workload
        assert small_ser.elapsed_s < small_obj.elapsed_s, workload
        # Large heap: the resident object block wins — every serialized
        # access pays deserialization CPU the object heap does not.
        assert large_obj.elapsed_s < large_ser.elapsed_s, workload
        # The tier removes the block from GC's tracing workload at every
        # heap size: its GC time never exceeds the object-heap run's.
        for heap_gb in HEAPS_GB:
            obj = results[(workload, heap_gb, "object-heap")]
            ser = results[(workload, heap_gb, "serialized")]
            assert ser.gc_s <= obj.gc_s + 1e-9, (workload, heap_gb)
