"""Panthera vs Deca: the policy ablation figure.

Panthera keeps the generational collector and decides *where* long-lived
data lives (DRAM vs NVM, tag-driven pretenuring); Deca (arXiv
1602.01959) removes the collector from the data path entirely — the
lifetime classifier routes every classified allocation into a region
arena that is freed wholesale, so region-managed classes see zero minor
and zero major GC pauses.  This figure puts the two side by side over
PR/KM/LR: GC pause totals, collection counts, region-reset work, and
per-device DRAM/NVM traffic.
"""

from repro.config import DeviceKind, PolicyName
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment

from benchmarks.conftest import BENCH_SCALE, print_and_report

POLICY_WORKLOADS = ("PR", "KM", "LR")
POLICIES = (PolicyName.PANTHERA, PolicyName.DECA)


def _run_policy_grid():
    # keep_context: the figure needs the machine's per-device bandwidth
    # meters and the region manager's reset counters, so the cells run
    # through run_experiment directly (the engine strips contexts).
    results = {}
    for workload in POLICY_WORKLOADS:
        for policy in POLICIES:
            config = paper_config(64, 1 / 3, policy, BENCH_SCALE)
            results[(workload, policy.value)] = run_experiment(
                workload,
                config,
                scale=BENCH_SCALE,
                workload_kwargs={"iterations": 3},
                keep_context=True,
            )
    return results


def _device_gib(result, device):
    bw = result.context.machine.bandwidth
    total = bw.total_bytes(device, False) + bw.total_bytes(device, True)
    return total / 2**30


def test_policy_comparison_panthera_vs_deca(benchmark):
    results = benchmark.pedantic(_run_policy_grid, rounds=1, iterations=1)
    lines = [
        "| program | policy | time (s) | GC (s) | minor | major "
        "| region resets | reset GiB | DRAM GiB | NVM GiB |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for workload in POLICY_WORKLOADS:
        for policy in POLICIES:
            r = results[(workload, policy.value)]
            regions = r.context.heap.regions
            resets = regions.reset_count + regions.region_free_count if regions else 0
            reset_gib = (
                (regions.reset_bytes + regions.region_free_bytes) / 2**30
                if regions
                else 0.0
            )
            lines.append(
                f"| {workload} | {policy.value} | {r.elapsed_s:.1f} "
                f"| {r.gc_s:.2f} | {r.minor_gcs} | {r.major_gcs} "
                f"| {resets} | {reset_gib:.2f} "
                f"| {_device_gib(r, DeviceKind.DRAM):.1f} "
                f"| {_device_gib(r, DeviceKind.NVM):.1f} |"
            )
    lines.append("")
    lines.append(
        "Deca trades GC pauses for charged wholesale resets: the "
        "classified classes are never traced, so pause totals collapse "
        "to zero while the reset work rides the cost plane as plain "
        "CPU time."
    )
    print_and_report(
        "policy_comparison",
        "Panthera vs Deca: pauses, reset work and device traffic",
        lines,
    )

    for workload in POLICY_WORKLOADS:
        panthera = results[(workload, "panthera")]
        deca = results[(workload, "deca")]
        # The acceptance criterion: region-managed classes see zero
        # minor and zero major pauses under Deca.
        assert deca.minor_gcs == 0 and deca.major_gcs == 0
        assert deca.gc_s == 0.0
        # Panthera actually collects on these cells, so the figure
        # contrasts something real.
        assert panthera.gc_s > 0.0
        # Deca paid for its frees through the cost plane instead.
        regions = deca.context.heap.regions
        assert regions is not None
        assert regions.reset_bytes + regions.region_free_bytes > 0
        # Both policies keep the job data NVM-eligible: NVM carries
        # traffic under Deca too (the job arena is NVM-backed).
        assert _device_gib(deca, DeviceKind.NVM) > 0.0
