"""Figure 5: computation vs GC time breakdown, 64 GB heap.

Paper rows (seconds, DRAM-only / Panthera / unmanaged):
  PR:   comp 786/787/913,  GC 174/279/284
  KM:   comp 792/819/798,  GC 220/106/361
  LR:   comp 550/511/527,  GC 293/324/445
  TC:   comp 207/226/253,  GC  72/119/130
  CC:   comp 283/303/294,  GC 115/ 77/177
  SSSP: comp 339/382/363,  GC 120/ 84/163
  BC:   comp 216/230/222,  GC 102/113/176
Shape: unmanaged GC is ~1.6x DRAM-only while its computation grows only
a few percent; Panthera's GC is near (sometimes below) DRAM-only.
"""

from repro.harness.configs import fig4_configs

from benchmarks.conftest import (
    ALL_WORKLOADS,
    BENCH_SCALE,
    print_and_report,
    run_grid,
)

PAPER_GC = {  # workload -> (dram-only, panthera, unmanaged) GC seconds
    "PR": (174, 279, 284),
    "KM": (220, 106, 361),
    "LR": (293, 324, 445),
    "TC": (72, 119, 130),
    "CC": (115, 77, 177),
    "SSSP": (120, 84, 163),
    "BC": (102, 113, 176),
}


def _run_all():
    configs = fig4_configs(BENCH_SCALE)
    flat = run_grid(
        {
            (workload, key): (workload, cfg)
            for workload in ALL_WORKLOADS
            for key, cfg in configs.items()
        }
    )
    out = {workload: {} for workload in ALL_WORKLOADS}
    for (workload, key), result in flat.items():
        out[workload][key] = result
    return out


def test_fig5_gc_breakdown(benchmark):
    all_results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "| program | config | computation (s) | GC (s) | GC share "
        "| paper GC ratio vs DRAM-only | measured GC ratio |",
        "|---|---|---|---|---|---|---|",
    ]
    order = ["dram-only", "panthera", "unmanaged"]
    for workload in ALL_WORKLOADS:
        results = all_results[workload]
        base_gc = results["dram-only"].gc_s
        for idx, key in enumerate(order):
            r = results[key]
            paper_ratio = PAPER_GC[workload][idx] / PAPER_GC[workload][0]
            measured_ratio = r.gc_s / base_gc if base_gc else 0.0
            lines.append(
                f"| {workload} | {key} | {r.mutator_s:.1f} | {r.gc_s:.1f} "
                f"| {100 * r.gc_s / r.elapsed_s:.1f}% "
                f"| {paper_ratio:.2f} | {measured_ratio:.2f} |"
            )
    print_and_report("fig5", "Figure 5: computation vs GC time", lines)

    for workload in ALL_WORKLOADS:
        results = all_results[workload]
        # GC is a real share of the run for the GC-pressured workloads.
        if workload != "TC":
            assert results["dram-only"].gc_s / results["dram-only"].elapsed_s > 0.05
            # The unmanaged GC penalty dominates its computation penalty (§5.3).
            gc_overhead = results["unmanaged"].gc_s / results["dram-only"].gc_s
            comp_overhead = (
                results["unmanaged"].mutator_s / results["dram-only"].mutator_s
            )
            assert gc_overhead > comp_overhead, workload
        assert results["panthera"].gc_s <= results["unmanaged"].gc_s, workload
