"""§5.2's nursery-size experiment.

"We have experimented with several different sizes (1/4, 1/5, 1/6, and
1/7 of the heap size) for the nursery space. The performance differences
between the 1/4, 1/5, and 1/6 configurations were marginal ... while the
configuration of 1/7 led to worse performance. We ended up using 1/6."

A smaller nursery means more frequent scavenges (and less DRAM left for
the old generation under Panthera); a larger one steals DRAM from the
old generation's hot data. The sweep below reproduces the flat 1/4-1/6
region with degradation at 1/7.
"""

from repro.config import PolicyName
from repro.harness.configs import paper_config

from benchmarks.conftest import BENCH_SCALE, print_and_report, run_grid

FRACTIONS = [1 / 4, 1 / 5, 1 / 6, 1 / 7]


def _run_sweep():
    return run_grid(
        {
            fraction: (
                "PR",
                paper_config(
                    64,
                    1 / 3,
                    PolicyName.PANTHERA,
                    BENCH_SCALE,
                    nursery_fraction=fraction,
                ),
            )
            for fraction in FRACTIONS
        }
    )


def test_nursery_fraction_sweep(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    base = results[1 / 6]
    lines = [
        "| nursery fraction | time (s) | vs 1/6 | GC (s) | minor GCs |",
        "|---|---|---|---|---|",
    ]
    for fraction in FRACTIONS:
        r = results[fraction]
        lines.append(
            f"| 1/{round(1 / fraction)} | {r.elapsed_s:.1f} "
            f"| {r.elapsed_s / base.elapsed_s:.3f} | {r.gc_s:.1f} "
            f"| {r.minor_gcs} |"
        )
    lines.append("")
    lines.append(
        "paper: 1/4, 1/5, 1/6 marginal differences; 1/7 worse; 1/6 chosen "
        "to leave more DRAM for the old generation."
    )
    print_and_report("nursery_sweep", "§5.2 nursery-size sweep", lines)

    # Smaller nurseries scavenge more often.
    assert results[1 / 7].minor_gcs > results[1 / 4].minor_gcs
    # The 1/4-1/6 plateau is flat (within a few percent).
    plateau = [results[f].elapsed_s for f in (1 / 4, 1 / 5, 1 / 6)]
    assert max(plateau) / min(plateau) < 1.08
    # 1/7 is no better than the chosen 1/6.
    assert results[1 / 7].elapsed_s >= results[1 / 6].elapsed_s * 0.99
