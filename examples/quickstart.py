#!/usr/bin/env python3
"""Quickstart: run one workload under the three main configurations.

This is the 60-second tour of the library: build the paper's 64 GB-heap /
1/3-DRAM configurations (scaled down 10x for a laptop), run PageRank
under DRAM-only, the unmanaged hybrid and Panthera, and print the
normalised time/energy comparison that Figure 4 of the paper reports.

Run with:  python examples/quickstart.py
"""

from repro import (
    fig4_configs,
    format_markdown_table,
    normalize_results,
    run_experiment,
    summarize,
)

SCALE = 0.1  # joint data + heap scale; shapes are scale-invariant


def main() -> None:
    print("Running PageRank under three memory configurations...\n")
    results = {}
    for name, config in fig4_configs(SCALE).items():
        results[name] = run_experiment("PR", config, scale=SCALE)
        print(" ", summarize(results[name]))

    normalized = normalize_results(results, baseline="dram-only")
    rows = [
        [name, values["time"], values["energy"]]
        for name, values in normalized.items()
    ]
    print()
    print(format_markdown_table(["configuration", "time (norm.)", "energy (norm.)"], rows))
    print()

    panthera = results["panthera"]
    print("Static analysis tags inferred for the PageRank program (§3):")
    for var, tag in panthera.analysis.tags.items():
        why = panthera.analysis.rationale[var]
        print(f"  {var:10s} -> {tag.value if tag else 'untagged':6s} ({why})")
    print()
    print(
        "Panthera headline: "
        f"{100 * (1 - normalized['panthera']['energy']):.0f}% energy saved at "
        f"{100 * (normalized['panthera']['time'] - 1):+.0f}% time vs DRAM-only."
    )


if __name__ == "__main__":
    main()
