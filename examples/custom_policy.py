#!/usr/bin/env python3
"""Writing your own placement policy.

The collector is policy-agnostic: everything Panthera-specific sits
behind :class:`repro.gc.policies.PlacementPolicy`.  This example rebuilds
**write rationing** as a ~60-line custom policy on Panthera's machinery:
static tags are ignored, every long-lived object starts in NVM, and only
write-hot objects earn DRAM at major GCs.  Because it keeps Panthera's
card padding, it dodges the GC pathology — what remains is precisely the
semantic gap the paper identifies: read-mostly hot RDDs marooned on NVM.

Run with:  python examples/custom_policy.py
"""

from typing import List, Optional, Tuple

from repro.config import DeviceKind, PolicyName
from repro.core.static_analysis import analyze_program
from repro.gc.policies import PlacementPolicy
from repro.heap.object_model import HeapObject
from repro.heap.spaces import Space
from repro.spark.context import SparkContext
from repro.spark.program import execute_program
from repro.workloads.registry import build_workload

SCALE = 0.1


class EarnYourDram(PlacementPolicy):
    """Ignore the static analysis entirely: every long-lived object
    starts in NVM and only write-hot objects earn DRAM residency at
    major GCs — pure write rationing rebuilt on Panthera's machinery."""

    name = PolicyName.PANTHERA  # reuse Panthera's instrumentation hooks
    card_padding = True

    WRITE_HOT = 3

    def build_old_spaces(self, base: int) -> List[Space]:
        config = self.config
        spaces = []
        if config.old_dram_bytes > 0:
            spaces.append(
                Space("old-dram", base, config.old_dram_bytes, "old",
                      device=DeviceKind.DRAM)
            )
            base += config.old_dram_bytes
        spaces.append(
            Space("old-nvm", base, config.old_nvm_bytes, "old",
                  device=DeviceKind.NVM)
        )
        return spaces

    def _dram(self, heap) -> Optional[Space]:
        try:
            return heap.old_space_named("old-dram")
        except Exception:
            return None

    def array_allocation_space(self, heap, tag, size) -> Space:
        # Tags are deliberately ignored: everything starts cold in NVM.
        return heap.old_space_named("old-nvm")

    def promotion_space(self, heap, obj) -> Space:
        return heap.old_space_named("old-nvm")

    def plan_migrations(self, heap, monitor) -> List[Tuple[HeapObject, Space]]:
        dram = self._dram(heap)
        if dram is None:
            return []
        budget = dram.free
        moves = []
        for obj in heap.old_space_named("old-nvm").iter_objects_by_addr():
            if obj.write_count >= self.WRITE_HOT and obj.size <= budget:
                budget -= obj.size
                moves.append((obj, dram))
        return moves


def run(policy=None) -> dict:
    from repro.harness.configs import paper_config

    config = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
    ctx = SparkContext.create(config, policy=policy and policy(config))
    spec = build_workload("PR", scale=SCALE, iterations=10)
    tags = analyze_program(spec.program).tags
    execute_program(spec.program, ctx, tags)
    return {
        "elapsed_s": ctx.machine.elapsed_s,
        "gc_s": ctx.collector.stats.total_gc_s,
        "energy_j": ctx.machine.energy_j(),
    }


def main() -> None:
    panthera = run()
    custom = run(EarnYourDram)
    print(f"{'policy':18s} {'time':>8s} {'GC':>8s} {'energy':>9s}")
    for name, row in (("panthera", panthera), ("earn-your-dram", custom)):
        print(
            f"{name:18s} {row['elapsed_s']:7.1f}s {row['gc_s']:7.1f}s "
            f"{row['energy_j']:8.1f}J"
        )
    delta = custom["elapsed_s"] / panthera["elapsed_s"] - 1
    print(
        f"\nthe custom policy is {100 * delta:+.1f}% slower than Panthera "
        "with higher energy: read-mostly hot RDDs never earn DRAM under "
        "write rationing (the §5.2 trap). It keeps Panthera's card "
        "padding, so the gap here is pure placement — the full "
        "Kingsguard baselines in benchmarks/test_ablations.py, which "
        "also lack padding, lose ~20%."
    )


if __name__ == "__main__":
    main()
