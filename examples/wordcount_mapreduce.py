#!/usr/bin/env python3
"""WordCount with a DRAM-resident dictionary on the Hadoop substrate.

A second §4.3 scenario: a Hadoop-style WordCount whose map tasks filter
through a stop-word dictionary held as a shared in-memory side table.
The dictionary is exactly the paper's "long-lived and frequently
accessed" structure — pre-tenured into DRAM via API 1 — while each map
task's split streams through the young generation and dies there.

Run with:  python examples/wordcount_mapreduce.py
"""

import random

from repro.config import MiB, PolicyName, SystemConfig
from repro.core.monitor import AccessMonitor
from repro.core.runtime_api import PantheraRuntime
from repro.core.tags import MemoryTag
from repro.gc.collector import Collector
from repro.gc.gclog import render_log
from repro.gc.policies import make_policy
from repro.hadoop.mapreduce import MapReduceJob, SideTable
from repro.heap.layout import HEAP_BASE, young_span_bytes
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine

HEAP = 512 * MiB
WORDS = (
    "hybrid memory panthera spark heap nvm dram garbage collector energy "
    "latency bandwidth tag analysis stage shuffle the a of and to in"
).split()
STOP_WORDS = {"the", "a", "of", "and", "to", "in"}


def build_stack():
    config = SystemConfig(
        heap_bytes=HEAP,
        dram_bytes=HEAP // 3,
        nvm_bytes=HEAP - HEAP // 3,
        policy=PolicyName.PANTHERA,
        large_array_threshold=MiB,
        interleave_chunk_bytes=8 * MiB,
    )
    machine = Machine(config)
    policy = make_policy(config)
    old_spaces = policy.build_old_spaces(HEAP_BASE + young_span_bytes(config))
    heap = ManagedHeap(config, machine, old_spaces, card_padding=policy.card_padding)
    monitor = AccessMonitor(machine)
    collector = Collector(heap, machine, policy, monitor=monitor)
    return machine, heap, collector, PantheraRuntime(heap, monitor)


def make_splits(n_splits: int, lines_per_split: int, seed: int = 3):
    rng = random.Random(seed)
    splits = []
    for split_idx in range(n_splits):
        split = []
        for line_idx in range(lines_per_split):
            line = " ".join(rng.choice(WORDS) for _ in range(12))
            split.append((split_idx * lines_per_split + line_idx, line))
        splits.append(split)
    return splits


def main() -> None:
    machine, heap, collector, runtime = build_stack()
    stop_table = SideTable(
        name="stop-words",
        records=[(word, True) for word in STOP_WORDS],
        nbytes=8 * MiB,
        tag=MemoryTag.DRAM,  # shared, probed per word: hot -> DRAM (API 1)
    )

    def tokenize(record):
        _, line = record
        return [
            (word, 1)
            for word in line.split()
            if not stop_table.lookup(word)
        ]

    job = MapReduceJob(
        heap,
        machine,
        runtime,
        map_fn=tokenize,
        reduce_fn=lambda word, counts: sum(counts),
        num_reducers=4,
        side_tables=[stop_table],
    )
    splits = make_splits(n_splits=16, lines_per_split=40)
    counts = job.run(splits, bytes_per_record=2 * MiB)

    top = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)[:8]
    print("top words (stop words filtered in the map phase):")
    for word, count in top:
        print(f"  {word:12s} {count}")
    assert not STOP_WORDS & set(counts)

    print("\nheap behaviour:")
    print(f"  simulated time: {machine.elapsed_s:.2f} s, "
          f"memory energy: {machine.energy_j():.1f} J")
    for line in render_log(collector.stats, machine.elapsed_s, tail=3):
        print("  " + line)


if __name__ == "__main__":
    main()
