#!/usr/bin/env python3
"""The §4.3 applicability story: Panthera's two public APIs outside Spark.

The paper argues the runtime APIs generalise to any Big Data system whose
backbone is a key-value array, and walks through Hadoop HashJoin: the
build-side table is loaded once, shared by all map workers and probed
constantly — it belongs in DRAM; the probe-side partitions stream through
the young generation and die there.

This example implements that HashJoin directly against the heap/GC layer
(no Spark), using:

  * API 1 (``place_array``): pre-tenure the build table by tag, and
  * API 2 (``track`` / ``record_call``): dynamically monitor a second,
    hard-to-predict table and let the major GC migrate it.

Run with:  python examples/hashjoin_pretenure.py
"""

import random

from repro.config import MiB, PolicyName, SystemConfig
from repro.core.monitor import AccessMonitor
from repro.core.runtime_api import PantheraRuntime
from repro.core.tags import MemoryTag
from repro.gc.collector import Collector
from repro.gc.policies import make_policy
from repro.heap.layout import HEAP_BASE, young_span_bytes
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine

HEAP = 256 * MiB
BUILD_TABLE_BYTES = 20 * MiB
MONITORED_TABLE_BYTES = 12 * MiB
PROBE_PARTITIONS = 12
PROBE_PARTITION_BYTES = 16 * MiB


def build_stack():
    config = SystemConfig(
        heap_bytes=HEAP,
        dram_bytes=HEAP // 3,
        nvm_bytes=HEAP - HEAP // 3,
        policy=PolicyName.PANTHERA,
        large_array_threshold=MiB,
        interleave_chunk_bytes=4 * MiB,
    )
    machine = Machine(config)
    policy = make_policy(config)
    old_spaces = policy.build_old_spaces(HEAP_BASE + young_span_bytes(config))
    heap = ManagedHeap(config, machine, old_spaces, card_padding=policy.card_padding)
    monitor = AccessMonitor(machine)
    collector = Collector(heap, machine, policy, monitor=monitor)
    runtime = PantheraRuntime(heap, monitor)
    return config, machine, heap, collector, runtime


def main() -> None:
    rng = random.Random(7)
    config, machine, heap, collector, runtime = build_stack()

    # --- API 1: pre-tenure the shared build table into DRAM ------------
    build_table = runtime.place_array(
        BUILD_TABLE_BYTES, MemoryTag.DRAM, owner_id=1
    )
    heap.add_root(build_table)
    print(
        f"build table ({BUILD_TABLE_BYTES // MiB} MiB): pre-tenured into "
        f"{build_table.space.name}"
    )

    # --- API 2: monitor a second table whose access pattern is unknown -
    mystery_table = runtime.place_array(
        MONITORED_TABLE_BYTES, MemoryTag.NVM, owner_id=2
    )
    heap.add_root(mystery_table)
    runtime.track(2)
    print(
        f"mystery table ({MONITORED_TABLE_BYTES // MiB} MiB): starts in "
        f"{mystery_table.space.name}, monitored via API 2"
    )

    # --- map workers stream probe partitions through the young gen -----
    for partition in range(PROBE_PARTITIONS):
        # Probe records are short-lived young objects.
        heap.allocate_ephemeral(PROBE_PARTITION_BYTES)
        # Probing reads the build table (random accesses) — charge it.
        probes = PROBE_PARTITION_BYTES // 4096
        device = build_table.space.device_of(build_table.addr)
        machine.access(device, random_reads=probes, threads=8, mlp=4)
        runtime.record_call(1)
        # The mystery table turns out to be probed constantly too.
        runtime.record_call(2)
        if rng.random() < 0.5:
            runtime.record_call(2)

    print(f"\nafter {PROBE_PARTITIONS} probe partitions:")
    print(f"  minor GCs: {collector.stats.minor_count}")
    print(f"  mystery table calls this cycle: "
          f"{collector.monitor.call_count(2)}")

    # --- a full GC re-assesses the monitored structure ------------------
    # (it has now survived a monitoring cycle and is clearly hot)
    mystery_table.age = 1
    collector.collect_major()
    print("\nafter the major GC:")
    print(f"  build table:   {build_table.space.name} (stays hot in DRAM)")
    print(f"  mystery table: {mystery_table.space.name} "
          "(migrated NVM -> DRAM by the reassessment)")
    print(f"  RDD-level migrations recorded: "
          f"{collector.stats.migrated_rdd_count}")

    print(f"\nsimulated time: {machine.elapsed_s:.3f} s, "
          f"memory energy: {machine.energy_j():.2f} J")


if __name__ == "__main__":
    main()
