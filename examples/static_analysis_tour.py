#!/usr/bin/env python3
"""A tour of the §3 static analysis on hand-written programs.

Each snippet below exercises one inference rule; the script prints the
program shape, the inferred tags and the analyser's rationale.

Run with:  python examples/static_analysis_tour.py
"""

from repro.core.static_analysis import analyze_program
from repro.spark.program import Program
from repro.spark.storage import StorageLevel


class Dataset:
    """A stand-in dataset handle (the analysis never looks inside)."""

    name = "input"


def identity(record):
    return record


def show(title: str, program: Program) -> None:
    analysis = analyze_program(program)
    print(f"--- {title} ---")
    for var, tag in analysis.tags.items():
        label = tag.value.upper() if tag else "untagged"
        print(f"  {var:10s} -> {label:8s} {analysis.rationale[var]}")
    if analysis.flipped:
        print("  (all persisted RDDs were NVM: every tag flipped to DRAM)")
    print()


def rule_used_only() -> Program:
    """A cached input read every iteration: the classic DRAM case."""
    p = Program()
    data = p.let("data", p.source(Dataset()).map(identity).persist())
    with p.loop(10):
        p.let("step", data.map(identity))
    p.action(data, "count")
    return p


def rule_defined_in_loop() -> Program:
    """An accumulator redefined per iteration: old instances go cold."""
    p = Program()
    hot = p.let("hot", p.source(Dataset()).map(identity).persist())
    acc = p.let("acc", p.source(Dataset()).map(identity).persist())
    with p.loop(10):
        acc = p.let(
            "acc",
            acc.join(hot).map(identity).persist(StorageLevel.MEMORY_AND_DISK_SER),
        )
    p.action(acc, "count")
    return p


def rule_no_loop_flip() -> Program:
    """Single-pass job: everything starts NVM, the flip rule fires."""
    p = Program()
    p.let("staging", p.source(Dataset()).map(identity).persist())
    p.let("model", p.source(Dataset()).map(identity).persist())
    return p


def rule_off_heap_and_disk() -> Program:
    """OFF_HEAP is forced to NVM; DISK_ONLY carries no memory tag."""
    p = Program()
    native = p.let(
        "native", p.source(Dataset()).map(identity).persist(StorageLevel.OFF_HEAP)
    )
    p.let(
        "archive",
        p.source(Dataset()).map(identity).persist(StorageLevel.DISK_ONLY),
    )
    hot = p.let("hot", p.source(Dataset()).map(identity).persist())
    with p.loop(5):
        p.let("probe", hot.join(native))
    return p


def rule_graphx_pattern() -> Program:
    """The GraphX pattern of §5.5: unpersist is invisible to the
    analysis, every persisted variable looks defined-in-loop, the flip
    rule tags them all DRAM — and dynamic migration must clean up."""
    p = Program()
    g = p.let("g", p.source(Dataset()).map(identity).persist())
    with p.loop(8):
        msgs = p.let("msgs", g.flat_map(lambda r: [r]).persist())
        g = p.let("g", g.join(msgs).map(identity).persist())
        p.unpersist_prior(g, lag=2)
        p.unpersist_prior(msgs, lag=2)
    p.action(g, "collect")
    return p


def main() -> None:
    show("used-only in a loop -> DRAM", rule_used_only())
    show("defined in each iteration -> NVM", rule_defined_in_loop())
    show("no loop -> all NVM -> flipped to DRAM", rule_no_loop_flip())
    show("OFF_HEAP -> NVM; DISK_ONLY -> untagged", rule_off_heap_and_disk())
    show("GraphX unpersist pattern (flip + dynamic migration)", rule_graphx_pattern())


if __name__ == "__main__":
    main()
