#!/usr/bin/env python3
"""PageRank over hybrid memory, end to end and under the hood.

This example builds Figure 2(a)'s program explicitly through the program
IR, runs the static analysis to show the inferred tags, executes under
Panthera, and then inspects where the bytes actually ended up: which old-
generation space holds ``links`` (hot, DRAM) and ``contribs`` (cold,
NVM), how many collections ran, and the resulting energy breakdown.

Run with:  python examples/pagerank_hybrid.py
"""

from repro import PolicyName, paper_config
from repro.harness.experiment import run_experiment

SCALE = 0.1


def main() -> None:
    config = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
    result = run_experiment(
        "PR",
        config,
        scale=SCALE,
        workload_kwargs={"iterations": 10},
        keep_context=True,
    )
    ctx = result.context

    print("=== static analysis (§3) ===")
    for var, tag in result.analysis.tags.items():
        print(f"  {var:10s} -> {tag.value if tag else 'untagged'}")
        print(f"              {result.analysis.rationale[var]}")

    print("\n=== data placement after the run (§4) ===")
    for block in ctx.block_manager.blocks():
        rdd = ctx.rdd_by_id(block.rdd_id)
        hist = block.device_histogram()
        placement = ", ".join(
            f"{device.value}: {nbytes / 2**30:.2f} GiB"
            for device, nbytes in sorted(hist.items(), key=lambda kv: kv[0].value)
        )
        state = "on disk" if block.on_disk else placement or "released"
        print(f"  RDD {block.rdd_id:3d} ({rdd.name:12s}): {state}")

    print("\n=== heap spaces ===")
    for space in ctx.heap.old_spaces:
        print(
            f"  {space.name:9s}: {space.used / 2**30:5.2f} / "
            f"{space.size / 2**30:5.2f} GiB used, {len(space.objects)} objects"
        )

    print("\n=== collections ===")
    stats = ctx.collector.stats
    print(f"  minor GCs: {stats.minor_count}  (eager-promoted "
          f"{stats.eager_promoted_objects} tagged objects)")
    print(f"  major GCs: {stats.major_count}  (migrated "
          f"{stats.migrated_rdd_count} RDDs)")
    print(f"  GC time: {result.gc_s:.1f} s of {result.elapsed_s:.1f} s "
          f"({100 * result.gc_s / result.elapsed_s:.1f}%)")

    print("\n=== energy (§5.1 model) ===")
    for device, parts in result.energy_by_device.items():
        print(
            f"  {device:5s}: static {parts['static_j']:8.1f} J, "
            f"dynamic {parts['dynamic_j']:8.1f} J"
        )
    print(f"  total: {result.energy_j:.1f} J")

    ranks = dict(result.action_results["ranks"])
    top = sorted(ranks, key=ranks.get, reverse=True)[:5]
    print("\n=== top-5 PageRank vertices ===")
    for vertex in top:
        print(f"  vertex {vertex:5d}: rank {ranks[vertex]:.3f}")


if __name__ == "__main__":
    main()
