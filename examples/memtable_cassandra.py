#!/usr/bin/env python3
"""A Cassandra-flavoured LSM store on the Panthera runtime APIs.

Section 4.3 names "database systems such as Apache Cassandra" as a third
target for Panthera's APIs.  An LSM storage engine is a perfect fit for
hybrid memory:

* the **memtable** absorbs every write — write-hot, small, DRAM;
* flushed **SSTable block caches** are read-mostly; *recent* SSTables are
  still probed constantly (reads skew young), older ones go cold fast —
  the access pattern the dynamic-monitoring API (API 2) exists for.

This example builds that engine over the simulated heap: the memtable is
pre-tenured into DRAM (API 1), each flush creates a monitored SSTable
cache (API 2), and after a few flush generations a major GC demotes the
cold old SSTables to NVM while the hot newest stays in DRAM.

Run with:  python examples/memtable_cassandra.py
"""

import random

from repro.config import MiB, PolicyName, SystemConfig
from repro.core.monitor import AccessMonitor
from repro.core.runtime_api import PantheraRuntime
from repro.core.tags import MemoryTag
from repro.gc.collector import Collector
from repro.gc.policies import make_policy
from repro.heap.layout import HEAP_BASE, young_span_bytes
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine

HEAP = 512 * MiB
MEMTABLE_BYTES = 12 * MiB
SSTABLE_BYTES = 16 * MiB
FLUSH_EVERY = 4_000  # writes per flush
GENERATIONS = 4
READS_PER_GENERATION = 6_000


def build_stack():
    config = SystemConfig(
        heap_bytes=HEAP,
        dram_bytes=HEAP // 3,
        nvm_bytes=HEAP - HEAP // 3,
        policy=PolicyName.PANTHERA,
        large_array_threshold=MiB,
        interleave_chunk_bytes=8 * MiB,
    )
    machine = Machine(config)
    policy = make_policy(config)
    old = policy.build_old_spaces(HEAP_BASE + young_span_bytes(config))
    heap = ManagedHeap(config, machine, old, card_padding=policy.card_padding)
    monitor = AccessMonitor(machine)
    collector = Collector(heap, machine, policy, monitor=monitor)
    return machine, heap, collector, PantheraRuntime(heap, monitor)


class LsmStore:
    """Memtable + levelled SSTable caches over the Panthera runtime."""

    def __init__(self, machine, heap, collector, runtime) -> None:
        self.machine = machine
        self.heap = heap
        self.collector = collector
        self.runtime = runtime
        self.memtable = runtime.place_array(MEMTABLE_BYTES, MemoryTag.DRAM, owner_id=1)
        heap.add_root(self.memtable)
        self.memtable_data = {}
        self.sstables = []  # (owner_id, array, key range)
        self._next_owner = 100

    def put(self, key, value) -> None:
        self.memtable_data[key] = value
        self.heap.write_data(self.memtable)
        device = self.memtable.space.device_of(self.memtable.addr)
        self.machine.access(device, random_writes=1, threads=8)
        if len(self.memtable_data) >= FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new monitored SSTable cache."""
        owner = self._next_owner
        self._next_owner += 1
        array = self.runtime.place_array(SSTABLE_BYTES, MemoryTag.NVM, owner)
        self.heap.add_root(array)
        self.runtime.track(owner)
        device = array.space.device_of(array.addr)
        self.machine.access(device, write_bytes=SSTABLE_BYTES, threads=8)
        self.sstables.append((owner, array, dict(self.memtable_data)))
        self.memtable_data.clear()

    def get(self, key):
        if key in self.memtable_data:
            return self.memtable_data[key]
        # Newest SSTable first (LSM read path).
        for owner, array, data in reversed(self.sstables):
            device = array.space.device_of(array.addr)
            self.machine.access(device, random_reads=2, threads=8)
            self.runtime.record_call(owner)
            if key in data:
                return data[key]
        return None


def main() -> None:
    rng = random.Random(11)
    machine, heap, collector, runtime = build_stack()
    store = LsmStore(machine, heap, collector, runtime)

    key_space = 40_000
    for generation in range(GENERATIONS):
        for _ in range(FLUSH_EVERY):
            store.put(rng.randrange(key_space), rng.random())
        # Reads skew heavily towards recently written keys.
        newest_base = generation * FLUSH_EVERY
        for _ in range(READS_PER_GENERATION):
            if rng.random() < 0.9 and store.sstables:
                store.get(rng.randrange(key_space))  # mostly hits newest
        heap.allocate_ephemeral(heap.eden.size // 2)  # app churn

    # Age the SSTables across one monitoring cycle, then re-assess.
    collector.collect_major()
    for owner, array, _ in store.sstables[-1:]:
        for _ in range(5):
            runtime.record_call(owner)  # the newest stays hot
    collector.collect_major()

    print(f"memtable: {store.memtable.space.name} (API 1 pre-tenured, write-hot)")
    for idx, (owner, array, _) in enumerate(store.sstables):
        age = len(store.sstables) - idx - 1
        print(
            f"sstable gen {idx} (age {age}): {array.space.name} "
            f"{'<- hot, promoted to DRAM' if array.space.name == 'old-dram' else ''}"
        )
    print(
        f"\nmajor GCs: {collector.stats.major_count}, dynamically migrated "
        f"structures: {collector.stats.migrated_object_count}"
    )
    print(f"simulated time {machine.elapsed_s:.2f}s, energy {machine.energy_j():.1f}J")


if __name__ == "__main__":
    main()
