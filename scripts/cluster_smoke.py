#!/usr/bin/env python
"""Cluster traffic smoke across the workloads (the CI ``cluster-smoke`` job).

For every requested workload the script replays a short seeded
single-workload traffic plan on a multi-executor cluster — executor
kills included — and checks three invariants:

* the run completes and reports sane throughput / latency metrics;
* a same-seed replay is byte-identical (``ClusterReport.to_json``);
* the injected executor kill converges — every job's action checksums
  match the fault-free replay's.

The per-workload :class:`~repro.cluster.simulator.ClusterReport` is
written as a JSON artifact.  Exits non-zero on any divergence.

Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py --scale 0.02 --out cluster/
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.cluster import Cluster, ClusterFaultPlan, ExecutorKill, generate_traffic

DEFAULT_WORKLOADS = ["PR", "KM", "LR", "TC", "CC", "SSSP", "BC"]


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=DEFAULT_WORKLOADS,
        help="Table 4 abbreviations to check (default: all seven)",
    )
    parser.add_argument(
        "--executors", type=int, default=2, help="cluster size"
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="base data scale"
    )
    parser.add_argument(
        "--max-jobs", type=int, default=3, help="jobs per workload plan"
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="traffic plan seed"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="lane worker processes"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory to write per-workload ClusterReport JSON into",
    )
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    kill_plan = ClusterFaultPlan(
        kills=[ExecutorKill(executor=1, at_boundary=2)]
    )
    failures = 0
    for workload in args.workloads:
        plan = generate_traffic(
            seed=args.seed,
            duration_s=30.0,
            rate_jobs_per_s=0.3,
            workloads=[workload],
            base_scale=args.scale,
            max_jobs=args.max_jobs,
        )
        cluster = Cluster(args.executors)
        clean, _ = cluster.run(plan, jobs=args.jobs)
        repeat, _ = cluster.run(plan, jobs=args.jobs)
        deterministic = clean.to_json() == repeat.to_json()
        faulted, _ = cluster.run(plan, faults=kill_plan, jobs=args.jobs)
        diverged = sorted(
            str(job.job_id)
            for job, fjob in zip(clean.jobs, faulted.jobs)
            if job.checksums != fjob.checksums
        )
        kills = faulted.faults["kills_fired"]
        ok = deterministic and not diverged
        status = "ok" if ok else "FAIL"
        print(
            f"{workload:5s} {clean.n_jobs} jobs on {args.executors} "
            f"executors: {clean.throughput_jobs_per_s:.4f} jobs/sim-s, "
            f"p99 {clean.latency_p99_s:.2f}s; {kills} kills fired, "
            f"{faulted.faults['partitions_recomputed']} partitions "
            f"recomputed; deterministic: {deterministic}  "
            f"convergence: {status}"
        )
        if diverged:
            print(f"      DIVERGED jobs: {', '.join(diverged)}")
        if not ok:
            failures += 1
        if out_dir is not None:
            path = out_dir / f"{workload.lower()}-cluster.json"
            payload = {
                "workload": workload,
                "deterministic": deterministic,
                "converged": not diverged,
                "diverged_jobs": diverged,
                "clean": clean.to_dict(),
                "faulted": faulted.to_dict(),
            }
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            print(f"      wrote {path}")
    if failures:
        print(f"cluster smoke: {failures} failure(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
