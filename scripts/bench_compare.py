#!/usr/bin/env python
"""Compare two ``repro bench`` JSON documents and gate on regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.2]
        [--advisory]

Exits 1 when any benchmark's metric (per-iteration time for micros, wall
time for experiments, cluster replays and sweep points, the per-record
growth ratio for
``sweep_summary`` records) exceeds the baseline by more than the
tolerance — unless ``--advisory`` is given, in which case regressions
are reported but the exit code stays 0.  Wall-clock baselines are
machine-specific: CI gates hard only on main (same runner class),
advisory on PRs.  ``sweep_summary`` ratios compare per-record cost at
the sweep's top scale against scale 1, so they are machine-independent
and meaningful even across runner classes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench import compare_documents  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional slowdown (default 0.20)",
    )
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions without failing",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    report = compare_documents(baseline, current, tolerance=args.tolerance)
    for line in report.lines:
        print(line)
    if report.regressions and not args.advisory:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
