#!/usr/bin/env python
"""Policy-matrix smoke (the CI ``policy-matrix`` job).

Runs PR and KM under both the ``panthera`` and ``deca`` policies and
checks two properties end to end:

* **Determinism** — every cell runs twice (serial engine, then a
  worker pool) and the action checksums must be byte-identical across
  ``--jobs``.
* **Convergence** — the placement policy must never change computed
  answers: for each workload, the Deca checksums must equal the
  Panthera checksums action for action.  The Deca cells additionally
  assert the zero-pause acceptance criterion (region-managed classes
  are never traced).

Per-workload verdicts are written as JSON artifacts.  Exits non-zero
on any divergence.

Usage::

    PYTHONPATH=src python scripts/policy_matrix_smoke.py --scale 0.02 --out policies/
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.config import PolicyName
from repro.faults import action_checksums
from repro.harness.configs import paper_config
from repro.harness.engine import ExperimentEngine, ExperimentPoint

DEFAULT_WORKLOADS = ["PR", "KM"]
POLICIES = (PolicyName.PANTHERA, PolicyName.DECA)


def _points(workloads, heap, ratio, scale):
    return [
        ExperimentPoint(
            workload, paper_config(heap, ratio, policy, scale), scale
        )
        for workload in workloads
        for policy in POLICIES
    ]


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=DEFAULT_WORKLOADS,
        help="Table 4 abbreviations to check (default: PR KM)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="joint data/heap scale"
    )
    parser.add_argument(
        "--heap", type=float, default=64.0, help="heap size in GB"
    )
    parser.add_argument(
        "--ratio", type=float, default=1 / 3, help="DRAM share of memory"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the second (parallel) pass",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory to write per-workload verdict JSON into",
    )
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    serial = ExperimentEngine(jobs=1).run(
        _points(args.workloads, args.heap, args.ratio, args.scale)
    )
    parallel = ExperimentEngine(jobs=args.jobs).run(
        _points(args.workloads, args.heap, args.ratio, args.scale)
    )

    failures = 0
    cells = {}
    for result_1, result_n in zip(serial, parallel):
        key = (result_1.workload, result_1.policy.value)
        cells[key] = (
            result_1,
            action_checksums(result_1.action_results),
            action_checksums(result_n.action_results),
        )

    for workload in args.workloads:
        problems = []
        for policy in POLICIES:
            result, sums_1, sums_n = cells[(workload, policy.value)]
            if sums_1 != sums_n:
                problems.append(
                    f"{policy.value}: checksums differ across --jobs"
                )
        pan_sums = cells[(workload, "panthera")][1]
        deca_result, deca_sums, _ = cells[(workload, "deca")]
        diverged = sorted(
            name
            for name in set(pan_sums) | set(deca_sums)
            if pan_sums.get(name) != deca_sums.get(name)
        )
        if diverged:
            problems.append(
                "panthera vs deca diverged: " + ", ".join(diverged)
            )
        if deca_result.minor_gcs or deca_result.major_gcs:
            problems.append(
                f"deca paused: {deca_result.minor_gcs} minor / "
                f"{deca_result.major_gcs} major GCs"
            )
        status = "ok" if not problems else "FAIL"
        print(
            f"{workload:5s} panthera "
            f"gc={cells[(workload, 'panthera')][0].gc_s:.2f}s  "
            f"deca gc={deca_result.gc_s:.2f}s "
            f"({deca_result.minor_gcs} minor / {deca_result.major_gcs} "
            f"major)  determinism+convergence: {status}"
        )
        for problem in problems:
            print(f"      {problem}")
        failures += bool(problems)
        if out_dir is not None:
            path = out_dir / f"{workload.lower()}-policies.json"
            payload = {
                "workload": workload,
                "scale": args.scale,
                "policies": [p.value for p in POLICIES],
                "checksums": {
                    policy.value: cells[(workload, policy.value)][1]
                    for policy in POLICIES
                },
                "deca_gc_s": deca_result.gc_s,
                "deca_minor_gcs": deca_result.minor_gcs,
                "deca_major_gcs": deca_result.major_gcs,
                "ok": not problems,
                "problems": problems,
            }
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            print(f"      wrote {path}")
    if failures:
        print(f"policy matrix smoke: {failures} failure(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
