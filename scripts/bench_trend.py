#!/usr/bin/env python
"""Render a benchmark trend table from a sequence of ``repro bench`` runs.

``scripts/bench_compare.py`` answers "did this run regress against the
baseline?"; this script answers "how has each benchmark moved across
runs?".  It takes any number of ``BENCH_*.json`` documents (ordered
oldest to newest — typically the committed baseline followed by the
current CI run), lines their benchmarks up by name, and renders one
markdown table per benchmark kind with a column per document and a
final delta column (newest vs oldest).  The CI ``bench`` job uploads
the rendered table next to ``BENCH_ci.json`` so perf movement is
visible across PRs, not just against the single baseline document.

Usage::

    python scripts/bench_trend.py BASELINE.json [MORE.json ...] \
        [--out benchmarks/results/TREND.md]

With ``--out -`` (the default) the table is written to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Benchmark kind -> (metric key, human unit).  Matches the metrics
#: ``scripts/bench_compare.py`` gates on.
TREND_METRICS: Dict[str, Tuple[str, str]] = {
    "micro": ("per_iter_us", "us/iter"),
    "experiment": ("wall_s", "wall s"),
    "cluster": ("wall_s", "wall s"),
    "sweep": ("wall_s", "wall s"),
    "sweep_summary": ("per_record_ratio", "x growth"),
}

KIND_TITLES: Dict[str, str] = {
    "micro": "Microbenchmarks",
    "experiment": "Experiment cells",
    "cluster": "Cluster traffic replay",
    "sweep": "Scale sweep",
    "sweep_summary": "Scale-sweep linearity",
}


def _label(document: Dict[str, Any], path: str) -> str:
    """Column label for one document: its created date, else the path."""
    created = document.get("created", "")
    return str(created).split("T")[0] if created else path


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.4g}"


def _delta(first: Optional[float], last: Optional[float]) -> str:
    if first is None or last is None or first <= 0:
        return "-"
    return f"{(last / first - 1.0) * 100.0:+.1f}%"


def render_trend(documents: Sequence[Dict[str, Any]], labels: Sequence[str]) -> str:
    """Render the markdown trend document for ``documents`` (oldest
    first).  Benchmarks are grouped by kind; a benchmark missing from a
    document shows ``-`` in that column."""
    by_kind: Dict[str, List[str]] = {}
    values: Dict[Tuple[str, int], float] = {}
    for index, document in enumerate(documents):
        for record in document.get("benchmarks", []):
            kind = record.get("kind", "")
            if kind not in TREND_METRICS:
                continue
            name = record["name"]
            names = by_kind.setdefault(kind, [])
            if name not in names:
                names.append(name)
            metric, _unit = TREND_METRICS[kind]
            if metric in record:
                values[(name, index)] = float(record[metric])

    lines = ["# Benchmark trend", ""]
    lines.append(
        f"{len(documents)} run(s), oldest to newest: "
        + ", ".join(labels)
        + ".  Delta compares the newest run against the oldest."
    )
    for kind, (metric, unit) in TREND_METRICS.items():
        names = by_kind.get(kind)
        if not names:
            continue
        lines.append("")
        lines.append(f"## {KIND_TITLES[kind]} ({unit})")
        lines.append("")
        lines.append("| benchmark | " + " | ".join(labels) + " | delta |")
        lines.append("|---" * (len(labels) + 2) + "|")
        for name in names:
            row = [values.get((name, index)) for index in range(len(documents))]
            lines.append(
                f"| {name} | "
                + " | ".join(_fmt(v) for v in row)
                + f" | {_delta(row[0], row[-1])} |"
            )
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "documents",
        nargs="+",
        metavar="BENCH.json",
        help="bench documents, oldest to newest",
    )
    parser.add_argument(
        "--out",
        default="-",
        metavar="PATH",
        help="output markdown path (default: stdout)",
    )
    args = parser.parse_args(argv)

    documents = []
    labels = []
    for path in args.documents:
        with open(path) as fh:
            document = json.load(fh)
        documents.append(document)
        labels.append(_label(document, path))

    rendered = render_trend(documents, labels)
    if args.out == "-":
        sys.stdout.write(rendered)
    else:
        with open(args.out, "w") as fh:
            fh.write(rendered)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
