#!/usr/bin/env python
"""Kill-and-recover smoke across the workloads (the CI ``faults-smoke`` job).

For every requested workload the script runs one fault-free reference
and one injected run — an executor kill at an early stage boundary plus
a transient NVM bandwidth-throttle window — and checks that lineage
recovery converged: every action checksum of the faulted run matches
the clean run's.  The per-workload :class:`~repro.faults.report.
FaultReport` (plan, measured recovery cost, convergence verdict) is
written as a JSON artifact.  Exits non-zero on any divergence.

Usage::

    PYTHONPATH=src python scripts/faults_smoke.py --scale 0.02 --out faults/
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.config import PolicyName
from repro.faults import FaultPlan, KillSpec, ThrottleSpec, action_checksums
from repro.harness.configs import paper_config
from repro.harness.engine import ExperimentEngine, ExperimentPoint

DEFAULT_WORKLOADS = ["PR", "KM", "LR", "TC", "CC", "SSSP", "BC"]

#: The standard smoke plan: lose a reduce partition just after the
#: second stage boundary, and collapse NVM bandwidth 4x for the first
#: two simulated seconds.
SMOKE_PLAN = FaultPlan(
    kills=[KillSpec("shuffle", 2, partition=1)],
    throttles=[ThrottleSpec(0, 2e9, 4.0)],
)


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=DEFAULT_WORKLOADS,
        help="Table 4 abbreviations to check (default: all seven)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="joint data/heap scale"
    )
    parser.add_argument(
        "--heap", type=float, default=64.0, help="heap size in GB"
    )
    parser.add_argument(
        "--ratio", type=float, default=1 / 3, help="DRAM share of memory"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="engine worker processes"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory to write per-workload FaultReport JSON into",
    )
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    engine = ExperimentEngine(jobs=args.jobs)
    points = []
    for workload in args.workloads:
        config = paper_config(
            args.heap, args.ratio, PolicyName.PANTHERA, args.scale
        )
        for plan in (FaultPlan(), SMOKE_PLAN):
            points.append(
                ExperimentPoint(workload, config, args.scale, faults=plan)
            )
    results = engine.run(points)

    failures = 0
    for i, workload in enumerate(args.workloads):
        clean, faulted = results[2 * i], results[2 * i + 1]
        clean_sums = action_checksums(clean.action_results)
        fault_sums = action_checksums(faulted.action_results)
        diverged = sorted(
            name
            for name in set(clean_sums) | set(fault_sums)
            if clean_sums.get(name) != fault_sums.get(name)
        )
        report = faulted.fault_report
        status = "ok" if not diverged else "FAIL"
        print(
            f"{workload:5s} kill+throttle: {report.kills_fired} fired, "
            f"{report.partitions_recomputed} partitions recomputed "
            f"({report.recompute_s:.2f}s), "
            f"{report.throttled_batches} throttled batches "
            f"(+{report.throttle_extra_s:.2f}s)  convergence: {status}"
        )
        if diverged:
            print(f"      DIVERGED actions: {', '.join(diverged)}")
            failures += 1
        if out_dir is not None:
            path = out_dir / f"{workload.lower()}-faults.json"
            payload = {
                "workload": workload,
                "scale": args.scale,
                "plan": SMOKE_PLAN.to_dict(),
                "report": report.to_dict(),
                "converged": not diverged,
                "diverged_actions": diverged,
                "checksums": fault_sums,
            }
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            print(f"      wrote {path}")
    if failures:
        print(f"faults smoke: {failures} divergence(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
