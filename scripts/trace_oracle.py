#!/usr/bin/env python
"""Run the trace-replay oracle across the smoke workloads.

For every requested workload the script records a full heap trace,
replays it through :func:`repro.trace.oracle_check` against the final
heap state and pause list, and writes the raw event stream as a JSONL
artifact.  Exits non-zero if any workload's trace fails to reconstruct
its heap — the CI ``trace-oracle`` job runs exactly this.

The replayed vocabulary covers every placement event (``alloc``,
``survivor_copy``, ``promote``, ``migrate_dram_to_nvm``,
``migrate_nvm_to_dram``, ``free``, ``gc_pause``); the informational
kinds (``spill``, ``drop``, ``unpersist``, ``tag_recognized``,
``fallback``, ``throttle``, ``recompute``) annotate the stream without
affecting replayed heap state.  ``--faults`` injects a small standard
fault plan (one shuffle kill, one NVM throttle window, a 30% NVM
balloon) so the fault-only kinds actually appear in the checked traces.

Usage::

    PYTHONPATH=src python scripts/trace_oracle.py --scale 0.02 --out traces/
    PYTHONPATH=src python scripts/trace_oracle.py --scale 0.02 --faults
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.config import PolicyName
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.trace import oracle_check, write_events_jsonl

DEFAULT_WORKLOADS = ["PR", "KM", "LR", "TC", "CC", "SSSP", "BC"]


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=DEFAULT_WORKLOADS,
        help="Table 4 abbreviations to check (default: all seven)",
    )
    parser.add_argument(
        "--policy",
        choices=sorted(p.value for p in PolicyName),
        default=PolicyName.PANTHERA.value,
        help="placement policy to run under",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="joint data/heap scale"
    )
    parser.add_argument(
        "--heap", type=float, default=64.0, help="heap size in GB"
    )
    parser.add_argument(
        "--ratio", type=float, default=1 / 3, help="DRAM share of memory"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory to write per-workload JSONL traces into",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="inject the standard smoke fault plan so fallback/throttle/"
        "recompute events appear in the checked traces",
    )
    args = parser.parse_args(argv)

    policy = PolicyName(args.policy)
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    plan = None
    if args.faults:
        from repro.faults import FaultPlan, KillSpec, ThrottleSpec

        plan = FaultPlan(
            kills=[KillSpec("shuffle", 2, partition=1)],
            throttles=[ThrottleSpec(0, 2e9, 4.0)],
            nvm_balloon_fraction=0.3,
        )

    failures = 0
    for workload in args.workloads:
        config = paper_config(args.heap, args.ratio, policy, args.scale)
        result = run_experiment(
            workload,
            config,
            scale=args.scale,
            keep_context=True,
            trace=True,
            faults=plan,
        )
        events = result.trace_events or []
        ctx = result.context
        problems = oracle_check(ctx.heap, ctx.collector.stats, events)
        status = "ok" if not problems else "FAIL"
        print(
            f"{workload:5s} [{policy.value}] {len(events):6d} events "
            f"({result.minor_gcs} minor / {result.major_gcs} major) "
            f"oracle: {status}"
        )
        for problem in problems:
            print(f"      {problem}")
            failures += 1
        if out_dir is not None:
            path = out_dir / f"{workload.lower()}-{policy.value}.jsonl"
            write_events_jsonl(events, path)
            print(f"      wrote {path}")
    if failures:
        print(f"trace oracle: {failures} mismatch(es)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
