#!/usr/bin/env python
"""Check that every relative link in the documentation resolves.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and image
references, skips external targets (``http://``, ``https://``,
``mailto:``), pure in-page anchors (``#section``) and GitHub virtual
paths that resolve outside the repository (the ``../../actions/...``
badge idiom), and verifies the remaining paths exist relative to the
file that references them.

Also fails on *orphaned* documentation: every ``docs/*.md`` file must
be reachable from ``README.md`` or ``docs/TUTORIAL.md`` by following
relative Markdown links (breadth-first over the link graph).  A page
nothing links to is a page nobody finds.

Exits non-zero listing every broken link and every orphan — the CI
docs job runs exactly this.

Usage::

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: Markdown inline links/images: [text](target) / ![alt](target).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_links(path: pathlib.Path):
    """Yield (line_number, target) for every link in one file."""
    inside_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            inside_fence = not inside_fence
            continue
        if inside_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    """All broken relative links in one Markdown file."""
    problems = []
    root = root.resolve()
    for lineno, target in iter_links(path):
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.is_relative_to(root):
            continue  # GitHub virtual path (e.g. the CI badge), not a file
        if not resolved.exists():
            problems.append(f"{path}:{lineno}: broken link -> {target}")
    return problems


#: Orphan-check roots: reachability starts from these files.
ROOT_DOCS = ("README.md", "docs/TUTORIAL.md")


def reachable_markdown(root: pathlib.Path) -> set:
    """Every markdown file reachable from the ROOT_DOCS by following
    relative links (breadth-first; external targets and non-markdown
    files are not traversed)."""
    root = root.resolve()
    queue = [
        (root / name).resolve() for name in ROOT_DOCS if (root / name).exists()
    ]
    seen = set(queue)
    while queue:
        path = queue.pop()
        for _lineno, target in iter_links(path):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative or not relative.endswith(".md"):
                continue
            resolved = (path.parent / relative).resolve()
            if (
                resolved.is_relative_to(root)
                and resolved.exists()
                and resolved not in seen
            ):
                seen.add(resolved)
                queue.append(resolved)
    return seen


def find_orphans(root: pathlib.Path) -> list:
    """Every ``docs/*.md`` file no ROOT_DOC (transitively) links to."""
    root = root.resolve()
    reachable = reachable_markdown(root)
    return [
        path
        for path in sorted(root.glob("docs/*.md"))
        if path.resolve() not in reachable
    ]


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root)
    files = sorted(root.glob("docs/*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.insert(0, readme)

    problems = []
    for path in files:
        problems.extend(check_file(path, root))
    for orphan in find_orphans(root):
        problems.append(
            f"{orphan}: orphaned (not reachable from "
            + " or ".join(ROOT_DOCS)
            + ")"
        )
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} files: "
        + ("all links resolve" if not problems else f"{len(problems)} broken")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
